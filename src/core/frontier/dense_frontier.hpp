#pragma once

/// \file core/frontier/dense_frontier.hpp
/// \brief Dense frontier: the active set as a bitmap over all ids —
/// paper §III-B: "a dense frontier can be represented as a boolean array,
/// where each element is true only if the corresponding vertex or edge is
/// active."
///
/// O(1) concurrent activation and membership, O(|V|/64) iteration — the
/// winning representation when the frontier is a large fraction of the
/// graph (and the natural input to pull traversals, which ask "is my
/// neighbor active?").

#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "parallel/atomic_bitset.hpp"

namespace essentials::frontier {

template <typename T = vertex_t>
class dense_frontier {
 public:
  using value_type = T;
  static constexpr frontier_kind kind = frontier_kind::vertex_frontier;

  dense_frontier() = default;

  /// A bitmap over the id universe [0, universe).  All inactive initially.
  explicit dense_frontier(std::size_t universe) : bits_(universe) {}

  /// Pool-aware construction: the bitmap is zeroed page-parallel so its
  /// pages are first-touched by the pool's workers (NUMA placement matches
  /// the operators that will activate vertices), not by the constructing
  /// thread.  Bit-identical to the serial constructor.
  dense_frontier(parallel::thread_pool& pool, std::size_t universe) {
    bits_.resize_and_clear(pool, universe);
  }

  /// Number of active elements (popcount scan).
  std::size_t size() const { return bits_.count(); }

  bool empty() const { return size() == 0; }

  /// Id universe (bitmap width), NOT the active count.
  std::size_t universe() const noexcept { return bits_.size(); }

  void clear() { bits_.clear(); }

  void resize_universe(std::size_t universe) {
    bits_.resize_and_clear(universe);
  }

  /// Pool-aware resize: same bits, page-parallel zero-fill (first-touch
  /// placement by the workers that will write the bitmap).
  void resize_universe(parallel::thread_pool& pool, std::size_t universe) {
    bits_.resize_and_clear(pool, universe);
  }

  /// Thread-safe activation; keeps the Listing 2 spelling.
  void add_vertex(T v) { bits_.set(static_cast<std::size_t>(v)); }

  /// Activation that reports whether this caller was first — the primitive
  /// a BFS filter uses to deduplicate for free.
  bool try_add_vertex(T v) {
    return bits_.test_and_set(static_cast<std::size_t>(v));
  }

  void remove_vertex(T v) { bits_.reset(static_cast<std::size_t>(v)); }

  /// O(1) membership — the query pull traversals hammer.
  bool contains(T v) const { return bits_.test(static_cast<std::size_t>(v)); }

  /// Serial iteration over active ids in increasing order.
  template <typename F>
  void for_each_active(F&& fn) const {
    bits_.for_each_set([&fn](std::size_t i) { fn(static_cast<T>(i)); });
  }

  /// Materialize the active set as a sorted vector.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(size());
    for_each_active([&out](T v) { out.push_back(v); });
    return out;
  }

  /// Word-level access for chunk-parallel iteration by operators.
  parallel::atomic_bitset const& bits() const noexcept { return bits_; }

 private:
  parallel::atomic_bitset bits_;
};

}  // namespace essentials::frontier
