#pragma once

/// \file core/frontier/async_queue_frontier.hpp
/// \brief Asynchronous-queue frontier: the active set as a concurrent work
/// queue — paper §III-B: "When represented as an asynchronous queue, a
/// frontier can communicate its elements using messages" (after Chen et
/// al.'s Atos).
///
/// There are no supersteps: consumers pop active vertices the moment they
/// exist, process them, and push newly activated vertices straight back.
/// Convergence is quiescence — no queued items and no in-flight items —
/// detected by the underlying mpmc_queue's pending-work counter, which is
/// precisely the asynchronous convergence condition of the paper's loop
/// structure.
///
/// The Listing 2 interface (`add_vertex`, `size`) still holds, so the same
/// vertex program runs unchanged on top of this representation; only the
/// driver loop differs (see core/enactor.hpp's async_enact).

#include <cstddef>

#include "core/types.hpp"
#include "parallel/mpmc_queue.hpp"

namespace essentials::frontier {

template <typename T = vertex_t>
class async_queue_frontier {
 public:
  using value_type = T;
  static constexpr frontier_kind kind = frontier_kind::vertex_frontier;

  async_queue_frontier() = default;

  /// "Add a vertex to the frontier" == send one unit of work / one message.
  void add_vertex(T v) { queue_.push(v); }

  /// Claim one active vertex; returns false when the algorithm is done
  /// (queue empty AND no consumer still processing).  The claimed item must
  /// be released with finish_vertex() after all its side effects — pushes of
  /// neighbors included — are visible.
  bool pop_vertex(T& out) { return queue_.pop(out); }

  /// Mark a previously popped vertex fully processed.
  void finish_vertex() { queue_.done_processing(); }

  /// Queued (not yet claimed) items — a racy monitoring snapshot; an
  /// asynchronous frontier has no stable size by design.
  std::size_t size() const { return queue_.size(); }

  bool empty() const { return queue_.empty(); }

  /// Nothing queued and nothing in flight: converged.
  bool is_quiescent() const { return queue_.is_quiescent(); }

  /// Early-exit support for convergence conditions other than quiescence.
  void close() { queue_.close(); }

  /// Reuse across runs: discard anything still queued (a closed or
  /// early-exited previous run may have left items behind) and reopen the
  /// queue.  Contract (PR 8 audit — the underlying close() used to be
  /// terminal, making reuse impossible): callers must ensure the previous
  /// run's *consumers* have finished popping (async_loop joins its workers,
  /// so this holds on return), but do NOT need to quiesce producers — a
  /// racing add_vertex lands in the old or new run, never wedges the
  /// pending counter.  After clear(), size() == 0 and the frontier accepts
  /// work exactly like a freshly constructed one.
  void clear() { queue_.reset(); }

  parallel::mpmc_queue<T>& queue() noexcept { return queue_; }

 private:
  parallel::mpmc_queue<T> queue_;
};

}  // namespace essentials::frontier
