#pragma once

/// \file core/frontier/distributed_frontier.hpp
/// \brief Message-passing frontier: active vertices are partitioned across
/// ranks and communicated exclusively through mpsim messages — the paper's
/// second communication model (§III-B).
///
/// Each rank owns the vertices a partition map assigns to it.  During a
/// superstep a rank activates vertices freely; activations of *remote*
/// vertices are buffered per destination.  `exchange()` then ships every
/// buffer as one message per destination rank, receives the peers' buffers,
/// and all-reduces the global active count — which doubles as the BSP
/// convergence condition ("while the global frontier is non-empty").
///
/// "With thoughtful design, regardless of the underlying representation,
/// the top-level interface to query the frontier remains the same": this
/// class keeps Listing 2's `add_vertex`/`size` spelling, so a vertex
/// program written against the shared-memory frontier ports unchanged.

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "mpsim/communicator.hpp"

namespace essentials::frontier {

template <typename T = vertex_t>
class distributed_frontier {
 public:
  using value_type = T;
  static constexpr frontier_kind kind = frontier_kind::vertex_frontier;

  /// `owner(v)` maps a vertex to the rank that owns it; must agree across
  /// all ranks.  The default modulo map is the paper's "random partitioning"
  /// heuristic; a partition-derived map plugs in the METIS-like scheme.
  distributed_frontier(mpsim::communicator& comm, int rank,
                       std::function<int(T)> owner)
      : comm_(&comm),
        rank_(rank),
        owner_(std::move(owner)),
        outgoing_(static_cast<std::size_t>(comm.size())) {}

  int rank() const noexcept { return rank_; }
  int world_size() const noexcept { return comm_->size(); }

  /// Activate a vertex.  Locally owned vertices land in the *next* local
  /// set directly; remote ones are buffered until exchange().  Single-owner
  /// discipline: only the owning rank's thread calls this object, so no
  /// locking is needed (message passing, not shared memory).
  void add_vertex(T v) {
    int const dst = owner_(v);
    if (dst == rank_)
      next_.push_back(v);
    else
      outgoing_[static_cast<std::size_t>(dst)].push_back(
          static_cast<std::uint64_t>(v));
  }

  /// The superstep boundary: flush buffered remote activations, receive
  /// peers' activations, promote the next set to current, and return the
  /// *global* number of active vertices (0 == converged everywhere).
  std::size_t exchange(int superstep_tag) {
    int const P = comm_->size();
    // Every rank sends to every other rank each superstep (possibly an
    // empty payload) so receives are deterministic without sentinels.
    for (int dst = 0; dst < P; ++dst) {
      if (dst == rank_)
        continue;
      comm_->send(rank_, dst, superstep_tag,
                  std::move(outgoing_[static_cast<std::size_t>(dst)]));
      outgoing_[static_cast<std::size_t>(dst)].clear();
    }
    for (int i = 0; i < P - 1; ++i) {
      mpsim::message_t msg;
      if (!comm_->recv(rank_, superstep_tag, msg))
        return 0;  // communicator shut down: treat as converged
      for (std::uint64_t const word : msg.payload)
        next_.push_back(static_cast<T>(word));
    }
    current_ = std::move(next_);
    next_.clear();
    std::uint64_t const global = comm_->all_reduce_sum(
        rank_, static_cast<std::uint64_t>(current_.size()));
    return static_cast<std::size_t>(global);
  }

  /// Active vertices this rank owns in the current superstep.
  std::vector<T> const& local() const noexcept { return current_; }

  /// Local active count (global count comes from exchange()).
  std::size_t size() const noexcept { return current_.size(); }
  bool empty() const noexcept { return current_.empty(); }

  void clear() {
    current_.clear();
    next_.clear();
    for (auto& buf : outgoing_)
      buf.clear();
  }

 private:
  mpsim::communicator* comm_;
  int rank_;
  std::function<int(T)> owner_;
  std::vector<T> current_;  ///< active set being processed this superstep
  std::vector<T> next_;     ///< activations for the next superstep
  std::vector<std::vector<std::uint64_t>> outgoing_;  ///< per-rank buffers
};

}  // namespace essentials::frontier
