#pragma once

/// \file core/frontier/frontier_gen.hpp
/// \brief Lock-free sparse-frontier generation: lane buffers + prefix-sum
/// compaction, plus the claim-bitmap dedup filter — the machinery behind
/// `execution::frontier_gen::scan` and `parallel_policy::dedup`.
///
/// The paper's Listing 3 publishes every discovered neighbor under a mutex.
/// Gunrock (the paper's GPU artifact) and Ligra both replace that with a
/// two-phase scheme, which this header implements for the thread pool:
///
///   1. **Produce.**  `run_blocked` partitions the index space into chunks
///      whose boundaries are multiples of one `step` (the documented
///      thread-pool chunking contract).  Chunk `lo / step` emits into its
///      own cache-line-padded lane of a `parallel::lane_buffers` scratch —
///      no locks, no atomics, no false sharing.
///   2. **Compact.**  An exclusive prefix sum over the (few) lane sizes —
///      reusing `parallel::exclusive_scan`'s blocked scan — assigns every
///      lane a disjoint slice of the output vector, which is resized once
///      and copied into in parallel.  Still no synchronization: slices are
///      disjoint by construction.
///
/// Extras threaded through:
///  - the scratch is `thread_local` to the *coordinating* thread and reused
///    across supersteps, so steady-state generation allocates nothing
///    (the telemetry `scratch_reused` flag reports warm starts);
///  - an optional `atomic_bitset` dedup filter suppresses duplicate ids at
///    emission time (`test_and_set` claim), turning the output into a set —
///    on high-degree graphs this stops BFS/SSSP frontiers from growing
///    super-linearly;
///  - output order is deterministic for fixed (n, grain, pool size):
///    chunk-major, input-order within a chunk.  Lock-published paths give
///    no such guarantee.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/sparse_frontier.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/for_each.hpp"
#include "parallel/lane_buffers.hpp"
#include "parallel/scan.hpp"
#include "parallel/thread_pool.hpp"

namespace essentials::frontier {

/// Counters a generation round reports back for telemetry threading.
struct generate_stats {
  std::size_t emitted = 0;      ///< elements written to the output frontier
  std::size_t dedup_hits = 0;   ///< emissions suppressed by the dedup filter
  bool scratch_reused = false;  ///< lane scratch arrived with warm capacity
};

namespace detail {

/// Mirror of thread_pool::run_blocked's deterministic chunking: the step
/// such that passing it back in as `grain` yields chunk boundaries exactly
/// at multiples of it (contract documented in parallel/thread_pool.hpp).
inline std::size_t chunk_step(parallel::thread_pool& pool, std::size_t n,
                              std::size_t grain) {
  return pool.bulk_step(n, grain);
}

/// Per-(coordinating thread, element type) lane scratch, reused across
/// supersteps.  Only the coordinating thread resizes the lane array;
/// workers touch exclusively their own lane between acquire() and the
/// superstep barrier, so the structure needs no locks.
template <typename T>
parallel::lane_buffers<T>& lane_scratch() {
  thread_local parallel::lane_buffers<T> scratch;
  return scratch;
}

/// One claim bitmap per coordinating thread, shared by both dedup_scratch
/// overloads so alternating call styles reuse one allocation.
inline parallel::atomic_bitset& dedup_bitmap() {
  thread_local parallel::atomic_bitset bitmap;
  return bitmap;
}

}  // namespace detail

/// Thread-local claim-bitmap scratch for dedup filtering: resized (and
/// cleared) to `universe` bits on each call, reusing the allocation when
/// the universe shrinks or stays put.
inline parallel::atomic_bitset& dedup_scratch(std::size_t universe) {
  auto& bitmap = detail::dedup_bitmap();
  bitmap.resize_and_clear(universe);
  return bitmap;
}

/// Pool-aware variant: the clear runs page-parallel on `pool` (when NUMA
/// placement is on and the bitmap is big enough), so the claim bitmap's
/// pages are first-touched by the workers whose emit closures will claim
/// bits — not by whichever thread coordinates the superstep.  Identical
/// bits either way.
inline parallel::atomic_bitset& dedup_scratch(parallel::thread_pool& pool,
                                              std::size_t universe) {
  auto& bitmap = detail::dedup_bitmap();
  bitmap.resize_and_clear(pool, universe);
  return bitmap;
}

/// Generate `out`'s active set with the two-phase scan-compaction path.
///
/// `body(lo, hi, emit)` is invoked once per chunk of [0, n) on a pool lane;
/// it must funnel every discovered element through `emit(value)` (an
/// emit-closure writing the chunk's private lane buffer).  When `dedup` is
/// non-null, elements whose bit is already claimed are suppressed (the
/// element type must index the bitmap).
///
/// `out`'s previous contents are replaced.  No locks or atomics are taken
/// anywhere on the output path; the only atomics are the optional dedup
/// bitmap's claims.
template <typename T, typename ChunkBody>
generate_stats generate_scan(parallel::thread_pool& pool, std::size_t n,
                             std::size_t grain,
                             sparse_frontier<T>& out, ChunkBody&& body,
                             parallel::atomic_bitset* dedup = nullptr) {
  generate_stats stats;
  auto& vec = out.active();
  vec.clear();
  if (n == 0)
    return stats;

  std::size_t const step = detail::chunk_step(pool, n, grain);
  std::size_t const chunks = (n + step - 1) / step;

  auto& scratch = detail::lane_scratch<T>();
  stats.scratch_reused = scratch.acquire(chunks);

  // Phase 1: produce into private lanes.  grain == step pins run_blocked's
  // chunk boundaries to multiples of step (thread-pool chunking contract),
  // so `lo / step` is a collision-free lane index.
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        auto& lane = scratch[lo / step];
        if (dedup != nullptr) {
          auto emit = [&lane, dedup](T v) {
            if (dedup->test_and_set(static_cast<std::size_t>(v)))
              lane.buf.push_back(v);
            else
              ++lane.suppressed;
          };
          body(lo, hi, emit);
        } else {
          auto emit = [&lane](T v) { lane.buf.push_back(v); };
          body(lo, hi, emit);
        }
      },
      step);

  // Phase 2: exclusive-scan lane sizes -> disjoint output slices, then copy
  // in parallel.  The scan reuses the blocked exclusive_scan (overkill for
  // ≤ 4·lanes entries, but it keeps one scan implementation in the tree).
  std::vector<std::size_t> counts(chunks), offsets(chunks);
  scratch.sizes(chunks, counts.data());
  std::size_t const total =
      parallel::exclusive_scan(pool, counts.data(), chunks, offsets.data());

  vec.resize(total);
  T* const dst = vec.data();
  pool.run_blocked(
      chunks,
      [&](std::size_t clo, std::size_t chi) {
        for (std::size_t c = clo; c < chi; ++c) {
          auto const& buf = scratch[c].buf;
          if (!buf.empty())
            std::copy(buf.begin(), buf.end(), dst + offsets[c]);
        }
      },
      /*grain=*/1);

  stats.emitted = total;
  stats.dedup_hits = scratch.total_suppressed();
  return stats;
}

/// Ablation baseline "bulk": every chunk buffers into a freshly allocated
/// local vector and publishes it with one spinlock acquisition
/// (`append_bulk`) — the CP.43 short-critical-section path that was the
/// default before scan compaction.  Appends to `out` (does not clear it),
/// matching the historical operator shape.
template <typename T, typename ChunkBody>
generate_stats generate_bulk(parallel::thread_pool& pool, std::size_t n,
                             std::size_t grain, sparse_frontier<T>& out,
                             ChunkBody&& body,
                             parallel::atomic_bitset* dedup = nullptr) {
  generate_stats stats;
  if (n == 0)
    return stats;
  std::atomic<std::size_t> emitted{0}, suppressed{0};
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<T> local;
        std::size_t hits = 0;
        if (dedup != nullptr) {
          auto emit = [&local, &hits, dedup](T v) {
            if (dedup->test_and_set(static_cast<std::size_t>(v)))
              local.push_back(v);
            else
              ++hits;
          };
          body(lo, hi, emit);
        } else {
          auto emit = [&local](T v) { local.push_back(v); };
          body(lo, hi, emit);
        }
        out.append_bulk(local.data(), local.size());
        emitted.fetch_add(local.size(), std::memory_order_relaxed);
        if (hits)
          suppressed.fetch_add(hits, std::memory_order_relaxed);
      },
      grain);
  stats.emitted = emitted.load(std::memory_order_relaxed);
  stats.dedup_hits = suppressed.load(std::memory_order_relaxed);
  return stats;
}

/// Ablation baseline "listing3": the paper's exact formulation — every
/// discovered element is appended through the frontier's public
/// `add_vertex`, whose internal spinlock serializes *per element*.
/// Appends to `out` (does not clear it).
template <typename T, typename ChunkBody>
generate_stats generate_listing3(parallel::thread_pool& pool, std::size_t n,
                                 std::size_t grain, sparse_frontier<T>& out,
                                 ChunkBody&& body,
                                 parallel::atomic_bitset* dedup = nullptr) {
  generate_stats stats;
  if (n == 0)
    return stats;
  std::atomic<std::size_t> emitted{0}, suppressed{0};
  pool.run_blocked(
      n,
      [&](std::size_t lo, std::size_t hi) {
        std::size_t count = 0, hits = 0;
        if (dedup != nullptr) {
          auto emit = [&out, &count, &hits, dedup](T v) {
            if (dedup->test_and_set(static_cast<std::size_t>(v))) {
              out.add_vertex(v);  // per-element lock inside the frontier
              ++count;
            } else {
              ++hits;
            }
          };
          body(lo, hi, emit);
        } else {
          auto emit = [&out, &count](T v) {
            out.add_vertex(v);  // per-element lock inside the frontier
            ++count;
          };
          body(lo, hi, emit);
        }
        emitted.fetch_add(count, std::memory_order_relaxed);
        if (hits)
          suppressed.fetch_add(hits, std::memory_order_relaxed);
      },
      grain);
  stats.emitted = emitted.load(std::memory_order_relaxed);
  stats.dedup_hits = suppressed.load(std::memory_order_relaxed);
  return stats;
}

/// Strategy dispatcher: run `body` over [0, n) and publish emissions into
/// `out` according to `mode`.  `out` is cleared first, so all three
/// strategies produce the frontier from scratch (identical contents up to
/// order; `scan`'s order is additionally deterministic).
template <typename T, typename ChunkBody>
generate_stats generate(execution::frontier_gen mode,
                        parallel::thread_pool& pool, std::size_t n,
                        std::size_t grain, sparse_frontier<T>& out,
                        ChunkBody&& body,
                        parallel::atomic_bitset* dedup = nullptr) {
  switch (mode) {
    case execution::frontier_gen::bulk:
      out.clear();
      return generate_bulk(pool, n, grain, out,
                           std::forward<ChunkBody>(body), dedup);
    case execution::frontier_gen::listing3:
      out.clear();
      return generate_listing3(pool, n, grain, out,
                               std::forward<ChunkBody>(body), dedup);
    case execution::frontier_gen::scan:
      break;
  }
  return generate_scan(pool, n, grain, out, std::forward<ChunkBody>(body),
                       dedup);
}

/// True when `stats.emitted` elements were published lock-free under
/// `mode` (telemetry helper: scan emissions are lock-free, bulk/listing3
/// emissions serialize on a lock).
inline constexpr bool lock_free_emits(execution::frontier_gen mode) {
  return mode == execution::frontier_gen::scan;
}

}  // namespace essentials::frontier
