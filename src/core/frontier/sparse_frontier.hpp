#pragma once

/// \file core/frontier/sparse_frontier.hpp
/// \brief Sparse frontier: the active set as a flat vector of ids —
/// paper Listing 2, hardened for concurrent producers.
///
/// The shared-memory representation of choice when the active set is small
/// relative to |V|: iteration cost is O(|F|), membership is not O(1).
/// Concurrent `add` is supported two ways, both exercised by the operators:
///  - `add(v)`: lock-guarded push_back — literally Listing 3's
///    mutex-protected `output.add_vertex(n)`;
///  - `append_bulk(...)`: one lock per lane-local buffer, the optimization
///    operators use to keep the critical section short (CP.43).
/// The default parallel generation path avoids the lock entirely: operators
/// build the active vector out-of-band with lane buffers + prefix-sum
/// compaction (core/frontier/frontier_gen.hpp) and install it via
/// `active()` before any reader can observe the frontier.

#include <cstddef>
#include <functional>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "parallel/spinlock.hpp"

namespace essentials::frontier {

template <typename T = vertex_t>
class sparse_frontier {
 public:
  using value_type = T;
  static constexpr frontier_kind kind = frontier_kind::vertex_frontier;

  sparse_frontier() = default;

  /// Build from an initial active set.
  explicit sparse_frontier(std::vector<T> active)
      : active_(std::move(active)) {}

  // Concurrency contract (audited; regression-tested under TSAN in
  // tests/test_frontier.cpp):
  //  - `add_vertex` / `append_bulk` may race with each other and with
  //    `clear()` and `swap()` — all four serialize on the spinlock, so a
  //    producer draining into a frontier the enactor is recycling cannot
  //    corrupt the vector.
  //  - Copying or moving a frontier while producers are appending remains a
  //    *caller bug*: copies/moves transfer the active vector without
  //    touching the source's lock (locking here would only hide the logic
  //    error — the copy would still contain an unpredictable prefix).  The
  //    enactor/operators only copy between supersteps.
  //  - Reads (`size`, `active()`, iteration) are unsynchronized by design:
  //    readers run after the superstep barrier, never beside producers.
  sparse_frontier(sparse_frontier const& other) : active_(other.active_) {}
  sparse_frontier(sparse_frontier&& other) noexcept
      : active_(std::move(other.active_)) {}
  sparse_frontier& operator=(sparse_frontier const& other) {
    active_ = other.active_;
    return *this;
  }
  sparse_frontier& operator=(sparse_frontier&& other) noexcept {
    active_ = std::move(other.active_);
    return *this;
  }

  // --- Listing 2 API ---------------------------------------------------------

  /// "Get the number of active vertices."
  std::size_t size() const noexcept { return active_.size(); }

  /// "Get the active vertex at a given index."
  T get_active_vertex(std::size_t i) const {
    expects(i < active_.size(), "sparse_frontier: index out of range");
    return active_[i];
  }

  /// "Add a vertex to the frontier." — thread-safe (Listing 3 wraps this in
  /// a lock; we keep the lock inside so call sites stay clean).
  void add_vertex(T v) {
    std::lock_guard<parallel::spinlock> guard(lock_);
    active_.push_back(v);
  }

  // --- framework extensions --------------------------------------------------

  bool empty() const noexcept { return active_.empty(); }

  /// Thread-safe versus concurrent add_vertex/append_bulk (a late
  /// `par_nosync` producer may still be draining while the caller recycles
  /// the frontier for the next superstep).
  void clear() noexcept {
    std::lock_guard<parallel::spinlock> guard(lock_);
    active_.clear();
  }

  void reserve(std::size_t n) { active_.reserve(n); }

  /// Append a whole lane-local buffer under one lock acquisition.
  void append_bulk(T const* data, std::size_t n) {
    if (n == 0)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    active_.insert(active_.end(), data, data + n);
  }

  /// Serial iteration over active elements.
  template <typename F>
  void for_each_active(F&& fn) const {
    for (T const& v : active_)
      fn(v);
  }

  /// O(|F|) membership test (tests/debugging; hot paths use dense frontiers
  /// when membership queries matter).
  bool contains(T v) const {
    for (T const& a : active_)
      if (a == v)
        return true;
    return false;
  }

  /// Direct access for parallel chunked iteration by the operators.
  std::vector<T> const& active() const noexcept { return active_; }
  std::vector<T>& active() noexcept { return active_; }

  /// Materialize the active set (already a vector; returns a copy).
  std::vector<T> to_vector() const { return active_; }

  /// Thread-safe versus concurrent appenders on either operand: both locks
  /// are taken (address-ordered, so two concurrent swaps cannot deadlock)
  /// before the storage exchange.
  friend void swap(sparse_frontier& a, sparse_frontier& b) noexcept {
    if (&a == &b)
      return;
    sparse_frontier* first = &a;
    sparse_frontier* second = &b;
    if (std::less<sparse_frontier*>{}(second, first))
      std::swap(first, second);
    std::lock_guard<parallel::spinlock> g1(first->lock_);
    std::lock_guard<parallel::spinlock> g2(second->lock_);
    std::swap(a.active_, b.active_);
  }

 private:
  std::vector<T> active_;
  parallel::spinlock lock_;
};

}  // namespace essentials::frontier
