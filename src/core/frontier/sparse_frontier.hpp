#pragma once

/// \file core/frontier/sparse_frontier.hpp
/// \brief Sparse frontier: the active set as a flat vector of ids —
/// paper Listing 2, hardened for concurrent producers.
///
/// The shared-memory representation of choice when the active set is small
/// relative to |V|: iteration cost is O(|F|), membership is not O(1).
/// Concurrent `add` is supported two ways, both exercised by the operators:
///  - `add(v)`: lock-guarded push_back — literally Listing 3's
///    mutex-protected `output.add_vertex(n)`;
///  - `append_bulk(...)`: one lock per lane-local buffer, the optimization
///    operators use to keep the critical section short (CP.43).

#include <cstddef>
#include <mutex>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "parallel/spinlock.hpp"

namespace essentials::frontier {

template <typename T = vertex_t>
class sparse_frontier {
 public:
  using value_type = T;
  static constexpr frontier_kind kind = frontier_kind::vertex_frontier;

  sparse_frontier() = default;

  /// Build from an initial active set.
  explicit sparse_frontier(std::vector<T> active)
      : active_(std::move(active)) {}

  // The spinlock guards concurrent add/append only; copying or moving a
  // frontier while producers are appending is a caller bug, so copies and
  // moves transfer the active vector and start with a fresh (unlocked) lock.
  sparse_frontier(sparse_frontier const& other) : active_(other.active_) {}
  sparse_frontier(sparse_frontier&& other) noexcept
      : active_(std::move(other.active_)) {}
  sparse_frontier& operator=(sparse_frontier const& other) {
    active_ = other.active_;
    return *this;
  }
  sparse_frontier& operator=(sparse_frontier&& other) noexcept {
    active_ = std::move(other.active_);
    return *this;
  }

  // --- Listing 2 API ---------------------------------------------------------

  /// "Get the number of active vertices."
  std::size_t size() const noexcept { return active_.size(); }

  /// "Get the active vertex at a given index."
  T get_active_vertex(std::size_t i) const {
    expects(i < active_.size(), "sparse_frontier: index out of range");
    return active_[i];
  }

  /// "Add a vertex to the frontier." — thread-safe (Listing 3 wraps this in
  /// a lock; we keep the lock inside so call sites stay clean).
  void add_vertex(T v) {
    std::lock_guard<parallel::spinlock> guard(lock_);
    active_.push_back(v);
  }

  // --- framework extensions --------------------------------------------------

  bool empty() const noexcept { return active_.empty(); }

  void clear() noexcept { active_.clear(); }

  void reserve(std::size_t n) { active_.reserve(n); }

  /// Append a whole lane-local buffer under one lock acquisition.
  void append_bulk(T const* data, std::size_t n) {
    if (n == 0)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    active_.insert(active_.end(), data, data + n);
  }

  /// Serial iteration over active elements.
  template <typename F>
  void for_each_active(F&& fn) const {
    for (T const& v : active_)
      fn(v);
  }

  /// O(|F|) membership test (tests/debugging; hot paths use dense frontiers
  /// when membership queries matter).
  bool contains(T v) const {
    for (T const& a : active_)
      if (a == v)
        return true;
    return false;
  }

  /// Direct access for parallel chunked iteration by the operators.
  std::vector<T> const& active() const noexcept { return active_; }
  std::vector<T>& active() noexcept { return active_; }

  /// Materialize the active set (already a vector; returns a copy).
  std::vector<T> to_vector() const { return active_; }

  friend void swap(sparse_frontier& a, sparse_frontier& b) noexcept {
    std::swap(a.active_, b.active_);
  }

 private:
  std::vector<T> active_;
  parallel::spinlock lock_;
};

}  // namespace essentials::frontier
