#pragma once

/// \file core/frontier/frontier.hpp
/// \brief Umbrella header and compile-time interface for the frontier
/// family, plus conversions between representations.
///
/// The paper's key claim for the communication pillar is that *multiple
/// underlying representations can sit behind one interface*.  The
/// `frontier_like` concept is that interface, checked at compile time for
/// every representation we ship; the conversion helpers let an algorithm
/// switch representation mid-run (e.g. direction-optimizing BFS moving
/// between sparse (push) and dense (pull) as density changes).

#include <concepts>
#include <cstddef>

#include "core/frontier/async_queue_frontier.hpp"
#include "core/frontier/dense_frontier.hpp"
#include "core/frontier/distributed_frontier.hpp"
#include "core/frontier/frontier_gen.hpp"
#include "core/frontier/sparse_frontier.hpp"
#include "core/types.hpp"

namespace essentials::frontier {

/// The representation-independent top-level interface (Listing 2's
/// spelling): every frontier can report a size, be queried for emptiness,
/// and accept an activation.
template <typename F>
concept frontier_like = requires(F f, F const cf, typename F::value_type v) {
  typename F::value_type;
  { cf.size() } -> std::convertible_to<std::size_t>;
  { cf.empty() } -> std::convertible_to<bool>;
  { f.add_vertex(v) };
};

/// Representations that support random access over a materialized active
/// set (sparse) — what BSP operators iterate in parallel.
template <typename F>
concept indexable_frontier = frontier_like<F> && requires(F const cf) {
  { cf.active() };
  { cf.get_active_vertex(std::size_t{0}) } -> std::convertible_to<typename F::value_type>;
};

/// Representations with O(1) membership (dense) — what pull traversals
/// query.
template <typename F>
concept queryable_frontier = frontier_like<F> && requires(F const cf, typename F::value_type v) {
  { cf.contains(v) } -> std::convertible_to<bool>;
};

static_assert(frontier_like<sparse_frontier<vertex_t>>);
static_assert(frontier_like<dense_frontier<vertex_t>>);
static_assert(frontier_like<async_queue_frontier<vertex_t>>);
static_assert(indexable_frontier<sparse_frontier<vertex_t>>);
static_assert(queryable_frontier<dense_frontier<vertex_t>>);

// ---------------------------------------------------------------------------
// Conversions
// ---------------------------------------------------------------------------

/// Sparse -> dense over a given universe.
template <typename T>
dense_frontier<T> to_dense(sparse_frontier<T> const& in, std::size_t universe) {
  dense_frontier<T> out(universe);
  in.for_each_active([&out](T v) { out.add_vertex(v); });
  return out;
}

/// Dense -> sparse (active ids in increasing order).
template <typename T>
sparse_frontier<T> to_sparse(dense_frontier<T> const& in) {
  return sparse_frontier<T>(in.to_vector());
}

/// Sparse -> async queue (seeds an asynchronous phase from a BSP frontier).
template <typename T>
void seed_queue(sparse_frontier<T> const& in, async_queue_frontier<T>& out) {
  in.for_each_active([&out](T v) { out.add_vertex(v); });
}

/// Frontier density: |F| / universe — the direction-optimizing signal.
template <typename T>
double density(dense_frontier<T> const& f) {
  return f.universe() == 0
             ? 0.0
             : static_cast<double>(f.size()) / static_cast<double>(f.universe());
}

template <typename T>
double density(sparse_frontier<T> const& f, std::size_t universe) {
  return universe == 0
             ? 0.0
             : static_cast<double>(f.size()) / static_cast<double>(universe);
}

}  // namespace essentials::frontier
