#pragma once

/// \file core/execution.hpp
/// \brief Execution policies — the paper's abstraction for the *timing*
/// pillar (§III-A).
///
/// "Much like the C++ standard library's execution policies, these policies
/// are unique types to allow for overloading of traversal and
/// transformation operators to support parallelism and synchronization
/// behaviors."  Exactly that: each policy is a distinct empty-ish type, the
/// operators in core/operators/ are overloaded (constrained) on it, and the
/// *functionality is identical while the underlying execution changes*:
///
///  - `seq`        — the invoking thread does all the work.  The reference
///                   semantics every parallel overload must match.
///  - `par`        — work runs on the persistent thread pool; the call
///                   returns only after an implicit barrier (one BSP
///                   superstep).
///  - `par_nosync` — work is *launched* on the pool and the call returns
///                   immediately; no barrier is introduced on the invoking
///                   thread (the paper's asynchronous alternative in
///                   Listing 3).  Callers synchronize explicitly via
///                   `policy.pool().wait_idle()` — or never, when the
///                   algorithm's convergence detection doesn't need it.
///
/// Policies carry the pool they dispatch to (defaulting to the process-wide
/// pool), so different operators — or different phases of one algorithm —
/// can be pinned to differently sized pools.

#include <cstddef>
#include <type_traits>

#include "parallel/thread_pool.hpp"

namespace essentials::execution {

/// Sequential policy: run in the invoking thread.
struct sequenced_policy {
  static constexpr bool is_parallel = false;
  static constexpr bool is_synchronous = true;
};

/// Parallel synchronous policy: pool execution + implicit barrier.
class parallel_policy {
 public:
  static constexpr bool is_parallel = true;
  static constexpr bool is_synchronous = true;

  parallel_policy() = default;
  explicit parallel_policy(parallel::thread_pool& pool) : pool_(&pool) {}

  parallel::thread_pool& pool() const {
    return pool_ ? *pool_ : parallel::default_pool();
  }

  /// Grain size hint forwarded to parallel_for.
  std::size_t grain = 256;

 private:
  parallel::thread_pool* pool_ = nullptr;
};

/// Parallel asynchronous policy: pool execution, no barrier on the invoking
/// thread.
class parallel_nosync_policy {
 public:
  static constexpr bool is_parallel = true;
  static constexpr bool is_synchronous = false;

  parallel_nosync_policy() = default;
  explicit parallel_nosync_policy(parallel::thread_pool& pool)
      : pool_(&pool) {}

  parallel::thread_pool& pool() const {
    return pool_ ? *pool_ : parallel::default_pool();
  }

  std::size_t grain = 256;

 private:
  parallel::thread_pool* pool_ = nullptr;
};

/// Ready-made policy instances, mirroring std::execution's spelling:
/// `essentials::execution::seq / par / par_nosync`.
inline constexpr sequenced_policy seq{};
inline parallel_policy const par{};
inline parallel_nosync_policy const par_nosync{};

/// Concept satisfied by every execution policy type.
template <typename P>
concept execution_policy = std::is_same_v<std::decay_t<P>, sequenced_policy> ||
                           std::is_same_v<std::decay_t<P>, parallel_policy> ||
                           std::is_same_v<std::decay_t<P>, parallel_nosync_policy>;

template <typename P>
concept synchronous_policy =
    execution_policy<P> && std::decay_t<P>::is_synchronous;

template <typename P>
concept asynchronous_policy =
    execution_policy<P> && !std::decay_t<P>::is_synchronous;

}  // namespace essentials::execution
