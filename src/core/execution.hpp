#pragma once

/// \file core/execution.hpp
/// \brief Execution policies — the paper's abstraction for the *timing*
/// pillar (§III-A).
///
/// "Much like the C++ standard library's execution policies, these policies
/// are unique types to allow for overloading of traversal and
/// transformation operators to support parallelism and synchronization
/// behaviors."  Exactly that: each policy is a distinct empty-ish type, the
/// operators in core/operators/ are overloaded (constrained) on it, and the
/// *functionality is identical while the underlying execution changes*:
///
///  - `seq`        — the invoking thread does all the work.  The reference
///                   semantics every parallel overload must match.
///  - `par`        — work runs on the persistent thread pool; the call
///                   returns only after an implicit barrier (one BSP
///                   superstep).
///  - `par_nosync` — work is *launched* on the pool and the call returns
///                   immediately; no barrier is introduced on the invoking
///                   thread (the paper's asynchronous alternative in
///                   Listing 3).  Callers synchronize explicitly via
///                   `policy.pool().wait_idle()` — or never, when the
///                   algorithm's convergence detection doesn't need it.
///
/// Policies carry the pool they dispatch to (defaulting to the process-wide
/// pool), so different operators — or different phases of one algorithm —
/// can be pinned to differently sized pools.

#include <cstddef>
#include <type_traits>

#include "parallel/thread_pool.hpp"

namespace essentials::execution {

/// How parallel operators publish discovered elements into a sparse output
/// frontier — the "frontier as execution policy" knob (paper Table I):
///
///  - `scan`     — lock-free two-phase generation: workers emit into
///                 cache-line-padded lane buffers, an exclusive prefix sum
///                 over lane counts assigns each lane a disjoint slice of
///                 the preallocated output, and lanes copy in with no locks
///                 or atomics.  Deterministic output order.  The default.
///  - `bulk`     — lane-local buffers published with one spinlock
///                 acquisition per chunk (CP.43 short critical section) —
///                 the pre-scan default, kept as an ablation baseline.
///  - `listing3` — paper Listing 3 verbatim: every discovered element is
///                 appended under the frontier's per-element lock.  The
///                 ablation baseline that quantifies what buffering buys.
///
/// Asynchronous (`par_nosync`) operators have no superstep barrier to run
/// the compaction phase behind, so `scan` degrades to `bulk` there —
/// semantics are unchanged, only the publication cost differs.
enum class frontier_gen : unsigned char { scan, bulk, listing3 };

/// Multi-query batching knob, consumed by the engine's dequeue-time fusion
/// window (engine/batcher.hpp) and the batchable job builders
/// (engine/batch_jobs.hpp):
///
///  - `fused`       — compatible concurrent queries (same graph, epoch and
///                    algorithm kind) may be coalesced into one lane-packed
///                    enactment (bit-lane MS-BFS / shared-traversal SSSP
///                    with per-lane distance arrays).  The default: pure
///                    throughput win, per-member results are bit-identical
///                    to unfused runs.
///  - `independent` — opt a submission out of fusion; it always enacts on
///                    its own (ablation baseline, or for jobs whose latency
///                    must never ride a batch's convergence tail).
enum class batch : unsigned char { fused, independent };

/// Grain heuristic, documented once here and applied by every advance-family
/// operator: `grain` bounds scheduling overhead for *element-wise* bodies
/// (compute/filter/reduce touch O(1) state per index, so 256 indices
/// amortize a ~1µs dispatch).  Advance bodies do O(out-degree) work per
/// index — with the zoo's mean degrees of 8–32, a grain of 256 vertices is
/// 8–32× too coarse: small frontiers collapse to one or two chunks and
/// leave the pool idle exactly when per-element work is heaviest.
/// `edge_grain` (default 16) is the advance-family grain; override with
/// `with_edge_grain` when a condition is unusually cheap or degrees are
/// unusually small.
inline constexpr std::size_t default_grain = 256;
inline constexpr std::size_t default_edge_grain = 16;

/// Sequential policy: run in the invoking thread.
struct sequenced_policy {
  static constexpr bool is_parallel = false;
  static constexpr bool is_synchronous = true;
};

/// Parallel synchronous policy: pool execution + implicit barrier.
class parallel_policy {
 public:
  static constexpr bool is_parallel = true;
  static constexpr bool is_synchronous = true;

  parallel_policy() = default;
  explicit parallel_policy(parallel::thread_pool& pool) : pool_(&pool) {}

  parallel::thread_pool& pool() const {
    return pool_ ? *pool_ : parallel::default_pool();
  }

  /// Grain size hint forwarded to parallel_for by element-wise operators.
  std::size_t grain = default_grain;

  /// Grain for advance-family operators (heavy per-element bodies); see the
  /// heuristic note on `default_edge_grain`.
  std::size_t edge_grain = default_edge_grain;

  /// Sparse-frontier generation strategy (see `frontier_gen`).
  frontier_gen frontier = frontier_gen::scan;

  /// When true, advance suppresses duplicate vertices in sparse outputs via
  /// an atomic claim bitmap over |V| — the output becomes a *set*.  Off by
  /// default because Listing 3/4 semantics are a multiset; turn on for
  /// BFS/SSSP-style programs where re-expansion of a vertex is pure waste
  /// (frontiers otherwise grow super-linearly on high-degree graphs).
  bool dedup = false;

  // Builder-style copies, so the const `execution::par` instance composes:
  //   auto p = execution::par.with_frontier(frontier_gen::bulk).with_dedup();
  parallel_policy with_grain(std::size_t g) const {
    auto p = *this;
    p.grain = g;
    return p;
  }
  parallel_policy with_edge_grain(std::size_t g) const {
    auto p = *this;
    p.edge_grain = g;
    return p;
  }
  parallel_policy with_frontier(frontier_gen f) const {
    auto p = *this;
    p.frontier = f;
    return p;
  }
  parallel_policy with_dedup(bool on = true) const {
    auto p = *this;
    p.dedup = on;
    return p;
  }

 private:
  parallel::thread_pool* pool_ = nullptr;
};

/// Parallel asynchronous policy: pool execution, no barrier on the invoking
/// thread.
class parallel_nosync_policy {
 public:
  static constexpr bool is_parallel = true;
  static constexpr bool is_synchronous = false;

  parallel_nosync_policy() = default;
  explicit parallel_nosync_policy(parallel::thread_pool& pool)
      : pool_(&pool) {}

  parallel::thread_pool& pool() const {
    return pool_ ? *pool_ : parallel::default_pool();
  }

  std::size_t grain = default_grain;
  std::size_t edge_grain = default_edge_grain;

  /// Publication strategy for the caller-owned output frontier.  `scan`
  /// requires a barrier and therefore behaves as `bulk` here (documented
  /// degradation); `listing3` is honored for ablations.
  frontier_gen frontier = frontier_gen::scan;

  /// Claim-bitmap dedup is not offered asynchronously: without a superstep
  /// boundary there is no safe point to reset the bitmap, so duplicate
  /// suppression belongs to the algorithm's own visited state.

  parallel_nosync_policy with_grain(std::size_t g) const {
    auto p = *this;
    p.grain = g;
    return p;
  }
  parallel_nosync_policy with_edge_grain(std::size_t g) const {
    auto p = *this;
    p.edge_grain = g;
    return p;
  }
  parallel_nosync_policy with_frontier(frontier_gen f) const {
    auto p = *this;
    p.frontier = f;
    return p;
  }

 private:
  parallel::thread_pool* pool_ = nullptr;
};

/// Ready-made policy instances, mirroring std::execution's spelling:
/// `essentials::execution::seq / par / par_nosync`.
inline constexpr sequenced_policy seq{};
inline parallel_policy const par{};
inline parallel_nosync_policy const par_nosync{};

/// Concept satisfied by every execution policy type.
template <typename P>
concept execution_policy = std::is_same_v<std::decay_t<P>, sequenced_policy> ||
                           std::is_same_v<std::decay_t<P>, parallel_policy> ||
                           std::is_same_v<std::decay_t<P>, parallel_nosync_policy>;

template <typename P>
concept synchronous_policy =
    execution_policy<P> && std::decay_t<P>::is_synchronous;

template <typename P>
concept asynchronous_policy =
    execution_policy<P> && !std::decay_t<P>::is_synchronous;

}  // namespace essentials::execution
