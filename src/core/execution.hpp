#pragma once

/// \file core/execution.hpp
/// \brief Execution policies — the paper's abstraction for the *timing*
/// pillar (§III-A).
///
/// "Much like the C++ standard library's execution policies, these policies
/// are unique types to allow for overloading of traversal and
/// transformation operators to support parallelism and synchronization
/// behaviors."  Exactly that: each policy is a distinct empty-ish type, the
/// operators in core/operators/ are overloaded (constrained) on it, and the
/// *functionality is identical while the underlying execution changes*:
///
///  - `seq`        — the invoking thread does all the work.  The reference
///                   semantics every parallel overload must match.
///  - `par`        — work runs on the persistent thread pool; the call
///                   returns only after an implicit barrier (one BSP
///                   superstep).
///  - `par_nosync` — work is *launched* on the pool and the call returns
///                   immediately; no barrier is introduced on the invoking
///                   thread (the paper's asynchronous alternative in
///                   Listing 3).  Callers synchronize explicitly via
///                   `policy.pool().wait_idle()` — or never, when the
///                   algorithm's convergence detection doesn't need it.
///
/// Policies carry the pool they dispatch to (defaulting to the process-wide
/// pool), so different operators — or different phases of one algorithm —
/// can be pinned to differently sized pools.

#include <cstddef>
#include <cstdlib>
#include <type_traits>

#include "parallel/thread_pool.hpp"

namespace essentials::execution {

/// How parallel operators publish discovered elements into a sparse output
/// frontier — the "frontier as execution policy" knob (paper Table I):
///
///  - `scan`     — lock-free two-phase generation: workers emit into
///                 cache-line-padded lane buffers, an exclusive prefix sum
///                 over lane counts assigns each lane a disjoint slice of
///                 the preallocated output, and lanes copy in with no locks
///                 or atomics.  Deterministic output order.  The default.
///  - `bulk`     — lane-local buffers published with one spinlock
///                 acquisition per chunk (CP.43 short critical section) —
///                 the pre-scan default, kept as an ablation baseline.
///  - `listing3` — paper Listing 3 verbatim: every discovered element is
///                 appended under the frontier's per-element lock.  The
///                 ablation baseline that quantifies what buffering buys.
///
/// Asynchronous (`par_nosync`) operators have no superstep barrier to run
/// the compaction phase behind, so `scan` degrades to `bulk` there —
/// semantics are unchanged, only the publication cost differs.
enum class frontier_gen : unsigned char { scan, bulk, listing3 };

/// Multi-query batching knob, consumed by the engine's dequeue-time fusion
/// window (engine/batcher.hpp) and the batchable job builders
/// (engine/batch_jobs.hpp):
///
///  - `fused`       — compatible concurrent queries (same graph, epoch and
///                    algorithm kind) may be coalesced into one lane-packed
///                    enactment (bit-lane MS-BFS / shared-traversal SSSP
///                    with per-lane distance arrays).  The default: pure
///                    throughput win, per-member results are bit-identical
///                    to unfused runs.
///  - `independent` — opt a submission out of fusion; it always enacts on
///                    its own (ablation baseline, or for jobs whose latency
///                    must never ride a batch's convergence tail).
enum class batch : unsigned char { fused, independent };

/// Work-decomposition strategy for the advance family — the load-balancing
/// axis the paper's §IV-C singles out ("this is where the bulk of
/// optimizations can be introduced").  Power-law frontiers swing between
/// "millions of low-degree vertices" and "a handful of celebrity hubs"
/// within one traversal, and no single decomposition wins both shapes:
///
///  - `thread_mapped` — vertices are the unit of work (Listing 3's natural
///                      mapping; the default).  Cheapest when degrees are
///                      uniform; one hub serializes a lane.
///  - `edge_balanced` — edges are the unit of work: exclusive-scan the
///                      frontier's degrees, split [0, W) into equal chunks,
///                      binary-search each chunk's starting vertex.  Immune
///                      to skew; pays a scan + search on every superstep.
///  - `degree_class`  — TWC-style triage: one pass buckets the frontier by
///                      degree; small vertices stay thread-mapped, medium
///                      ones go edge-balanced, huge hubs are expanded
///                      cooperatively by all lanes.  Skew immunity without
///                      a full scan when only a few hubs cause it.
///  - `auto_select`   — pick per superstep from the frontier's size, its
///                      estimated edge work and the graph's cached max/mean
///                      degree ratio (graph/properties.hpp); the decision is
///                      recorded in telemetry (schema v7).
///
/// Every strategy computes the same function as `advance_push` — only the
/// decomposition changes (the differential suite pins this).  Dispatched by
/// `operators::advance_balanced`; `with_load_balance` composes like every
/// other policy builder.
enum class load_balance : unsigned char {
  thread_mapped,
  edge_balanced,
  degree_class,
  auto_select
};

inline constexpr char const* to_string(load_balance lb) {
  switch (lb) {
    case load_balance::thread_mapped:
      return "thread_mapped";
    case load_balance::edge_balanced:
      return "edge_balanced";
    case load_balance::degree_class:
      return "degree_class";
    case load_balance::auto_select:
      return "auto_select";
  }
  return "unknown";
}

/// Grain heuristic, documented once here and applied by every advance-family
/// operator: `grain` bounds scheduling overhead for *element-wise* bodies
/// (compute/filter/reduce touch O(1) state per index, so 256 indices
/// amortize a ~1µs dispatch).  Advance bodies do O(out-degree) work per
/// index — with the zoo's mean degrees of 8–32, a grain of 256 vertices is
/// 8–32× too coarse: small frontiers collapse to one or two chunks and
/// leave the pool idle exactly when per-element work is heaviest.
/// `edge_grain` (default 16) is the advance-family grain; override with
/// `with_edge_grain` when a condition is unusually cheap or degrees are
/// unusually small.
inline constexpr std::size_t default_grain = 256;
inline constexpr std::size_t default_edge_grain = 16;

/// Floor (in edges) for the chunk size of edge-balanced decompositions: the
/// binary search that locates a chunk's starting vertex amortizes over the
/// chunk's edges, so tiny grains would shred that amortization.  One shared
/// constant — every edge-domain strategy (edge_balanced pass 2, the
/// degree-class medium bucket and cooperative hub expansion) floors its
/// grain at this value.
inline constexpr std::size_t default_edge_grain_floor = 64;

/// The process-wide edge-grain floor: `default_edge_grain_floor` unless the
/// `ESSENTIALS_EDGE_GRAIN` environment variable overrides it (read once; a
/// value of 0 or garbage falls back to the default).  Policies capture this
/// at construction into `edge_grain_floor`, so `with_edge_grain_floor`
/// still overrides per call site.
inline std::size_t edge_grain_floor_from_env() {
  static std::size_t const floor = [] {
    if (char const* const env = std::getenv("ESSENTIALS_EDGE_GRAIN")) {
      char* end = nullptr;
      unsigned long long const v = std::strtoull(env, &end, 10);
      if (end != env && v > 0)
        return static_cast<std::size_t>(v);
    }
    return default_edge_grain_floor;
  }();
  return floor;
}

/// Sequential policy: run in the invoking thread.
struct sequenced_policy {
  static constexpr bool is_parallel = false;
  static constexpr bool is_synchronous = true;
};

/// Parallel synchronous policy: pool execution + implicit barrier.
class parallel_policy {
 public:
  static constexpr bool is_parallel = true;
  static constexpr bool is_synchronous = true;

  parallel_policy() = default;
  explicit parallel_policy(parallel::thread_pool& pool) : pool_(&pool) {}

  parallel::thread_pool& pool() const {
    return pool_ ? *pool_ : parallel::default_pool();
  }

  /// Grain size hint forwarded to parallel_for by element-wise operators.
  std::size_t grain = default_grain;

  /// Grain for advance-family operators (heavy per-element bodies); see the
  /// heuristic note on `default_edge_grain`.
  std::size_t edge_grain = default_edge_grain;

  /// Floor (in edges) for edge-domain chunk sizes (see
  /// `default_edge_grain_floor`); seeded from `ESSENTIALS_EDGE_GRAIN`.
  std::size_t edge_grain_floor = edge_grain_floor_from_env();

  /// Sparse-frontier generation strategy (see `frontier_gen`).
  frontier_gen frontier = frontier_gen::scan;

  /// Work-decomposition strategy for `operators::advance_balanced` (see
  /// `load_balance`).  `thread_mapped` preserves the historical advance
  /// behavior; `auto_select` re-decides every superstep.
  load_balance balance = load_balance::thread_mapped;

  /// When true, advance suppresses duplicate vertices in sparse outputs via
  /// an atomic claim bitmap over |V| — the output becomes a *set*.  Off by
  /// default because Listing 3/4 semantics are a multiset; turn on for
  /// BFS/SSSP-style programs where re-expansion of a vertex is pure waste
  /// (frontiers otherwise grow super-linearly on high-degree graphs).
  bool dedup = false;

  // Builder-style copies, so the const `execution::par` instance composes:
  //   auto p = execution::par.with_frontier(frontier_gen::bulk).with_dedup();
  parallel_policy with_grain(std::size_t g) const {
    auto p = *this;
    p.grain = g;
    return p;
  }
  parallel_policy with_edge_grain(std::size_t g) const {
    auto p = *this;
    p.edge_grain = g;
    return p;
  }
  parallel_policy with_frontier(frontier_gen f) const {
    auto p = *this;
    p.frontier = f;
    return p;
  }
  parallel_policy with_dedup(bool on = true) const {
    auto p = *this;
    p.dedup = on;
    return p;
  }
  parallel_policy with_load_balance(load_balance lb) const {
    auto p = *this;
    p.balance = lb;
    return p;
  }
  parallel_policy with_edge_grain_floor(std::size_t f) const {
    auto p = *this;
    p.edge_grain_floor = f;
    return p;
  }

 private:
  parallel::thread_pool* pool_ = nullptr;
};

/// Parallel asynchronous policy: pool execution, no barrier on the invoking
/// thread.
class parallel_nosync_policy {
 public:
  static constexpr bool is_parallel = true;
  static constexpr bool is_synchronous = false;

  parallel_nosync_policy() = default;
  explicit parallel_nosync_policy(parallel::thread_pool& pool)
      : pool_(&pool) {}

  parallel::thread_pool& pool() const {
    return pool_ ? *pool_ : parallel::default_pool();
  }

  std::size_t grain = default_grain;
  std::size_t edge_grain = default_edge_grain;

  /// Publication strategy for the caller-owned output frontier.  `scan`
  /// requires a barrier and therefore behaves as `bulk` here (documented
  /// degradation); `listing3` is honored for ablations.
  frontier_gen frontier = frontier_gen::scan;

  /// Claim-bitmap dedup is not offered asynchronously: without a superstep
  /// boundary there is no safe point to reset the bitmap, so duplicate
  /// suppression belongs to the algorithm's own visited state.  Load
  /// balancing is likewise synchronous-only: every non-thread-mapped
  /// strategy needs a frontier-wide planning pass (degree scan or triage)
  /// that only a superstep boundary can order before the expansion.

  parallel_nosync_policy with_grain(std::size_t g) const {
    auto p = *this;
    p.grain = g;
    return p;
  }
  parallel_nosync_policy with_edge_grain(std::size_t g) const {
    auto p = *this;
    p.edge_grain = g;
    return p;
  }
  parallel_nosync_policy with_frontier(frontier_gen f) const {
    auto p = *this;
    p.frontier = f;
    return p;
  }

 private:
  parallel::thread_pool* pool_ = nullptr;
};

/// Ready-made policy instances, mirroring std::execution's spelling:
/// `essentials::execution::seq / par / par_nosync`.
inline constexpr sequenced_policy seq{};
inline parallel_policy const par{};
inline parallel_nosync_policy const par_nosync{};

/// Concept satisfied by every execution policy type.
template <typename P>
concept execution_policy = std::is_same_v<std::decay_t<P>, sequenced_policy> ||
                           std::is_same_v<std::decay_t<P>, parallel_policy> ||
                           std::is_same_v<std::decay_t<P>, parallel_nosync_policy>;

template <typename P>
concept synchronous_policy =
    execution_policy<P> && std::decay_t<P>::is_synchronous;

template <typename P>
concept asynchronous_policy =
    execution_policy<P> && !std::decay_t<P>::is_synchronous;

}  // namespace essentials::execution
