#pragma once

/// \file core/operators/reduce.hpp
/// \brief Reduction operators over frontiers and vertex ranges — how
/// convergence conditions observe global state (e.g. PageRank's L1 error,
/// "how many labels changed this superstep").

#include <cstddef>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "parallel/for_each.hpp"

namespace essentials::operators {

/// Fold `combine(acc, map(v))` over a sparse frontier's active elements.
template <typename P, typename T, typename R, typename MapF, typename CombineF>
  requires execution::synchronous_policy<P>
R reduce(P policy, frontier::sparse_frontier<T> const& f, R identity,
         MapF map, CombineF combine) {
  auto const& active = f.active();
  if constexpr (std::decay_t<P>::is_parallel) {
    return parallel::parallel_reduce(
        policy.pool(), std::size_t{0}, active.size(), identity,
        [&active, map](std::size_t i) { return map(active[i]); }, combine,
        policy.grain);
  } else {
    R acc = identity;
    for (T const& v : active)
      acc = combine(acc, map(v));
    return acc;
  }
}

/// Fold over every vertex of the graph.
template <typename P, typename G, typename R, typename MapF, typename CombineF>
  requires execution::synchronous_policy<P>
R reduce_vertices(P policy, G const& g, R identity, MapF map,
                  CombineF combine) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  if constexpr (std::decay_t<P>::is_parallel) {
    return parallel::parallel_reduce(
        policy.pool(), std::size_t{0}, n, identity,
        [map](std::size_t v) { return map(static_cast<V>(v)); }, combine,
        policy.grain);
  } else {
    R acc = identity;
    for (std::size_t v = 0; v < n; ++v)
      acc = combine(acc, map(static_cast<V>(v)));
    return acc;
  }
}

}  // namespace essentials::operators
