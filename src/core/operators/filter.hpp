#pragma once

/// \file core/operators/filter.hpp
/// \brief Frontier contraction operators: `filter` keeps the elements that
/// satisfy a predicate, `uniquify` removes duplicates.
///
/// Advance expands, filter contracts — together they are the paper's
/// "traversals or transformations on the frontiers".  A push advance over a
/// graph with shared neighbors emits duplicates; BFS/SSSP pipelines
/// typically run `advance → uniquify` or fold the dedupe into the condition
/// via a claim bitmap.  All overloads are policy-disambiguated like advance.
///
/// Sparse outputs are published through the policy's frontier-generation
/// strategy (`execution::frontier_gen`, see core/frontier/frontier_gen.hpp):
/// the default scan path compacts lane buffers with a prefix sum — no locks
/// on the output path — while `bulk`/`listing3` reproduce the historical
/// locked paths for ablations.  `filter` ignores `policy.dedup` (it has no
/// id universe to size a claim bitmap over; run `uniquify` for that), and
/// `uniquify` *is* the dedup filter: its claim bitmap rides the generation
/// path's dedup hook, so all three strategies produce the same set.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/telemetry.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/for_each.hpp"

namespace essentials::operators {

/// Sequential filter: reference semantics, preserves input order.
template <typename T, typename Pred>
frontier::sparse_frontier<T> filter(execution::sequenced_policy policy,
                                    frontier::sparse_frontier<T> const& in,
                                    Pred pred) {
  auto const probe = telemetry::make_probe("filter.seq", policy, in.size());
  frontier::sparse_frontier<T> out;
  for (T const& v : in.active())
    if (pred(v))
      out.active().push_back(v);
  probe.set_items_out(out.size());
  return out;
}

/// Parallel synchronous filter.  Publication follows `policy.frontier`: the
/// default scan path yields a deterministic, input-ordered output (chunk
/// boundaries are fixed by the pool's chunking contract); the `bulk` and
/// `listing3` ablations publish under locks in racy chunk order (frontier
/// order is semantically a set either way).
template <typename T, typename Pred>
frontier::sparse_frontier<T> filter(execution::parallel_policy policy,
                                    frontier::sparse_frontier<T> const& in,
                                    Pred pred) {
  auto const probe = telemetry::make_probe("filter.par", policy, in.size());
  frontier::sparse_frontier<T> out;
  auto const& active = in.active();
  auto const stats = frontier::generate(
      policy.frontier, policy.pool(), active.size(), policy.grain, out,
      [&](std::size_t lo, std::size_t hi, auto&& emit) {
        for (std::size_t i = lo; i < hi; ++i)
          if (pred(active[i]))
            emit(active[i]);
      });
  detail::flush_generate_stats(probe, policy.frontier, stats);
  probe.set_items_out(out.size());
  return out;
}

/// Dense filter: clears bits whose ids fail the predicate.  In-place by
/// value semantics (returns the filtered copy) to mirror the sparse shape.
template <typename P, typename T, typename Pred>
  requires execution::synchronous_policy<P>
frontier::dense_frontier<T> filter(P policy,
                                   frontier::dense_frontier<T> const& in,
                                   Pred pred) {
  auto const probe = telemetry::make_probe("filter.dense", policy,
                                           telemetry::probe_items(in));
  frontier::dense_frontier<T> out(in.universe());
  auto const copy_if = [&](T v) {
    if (pred(v))
      out.add_vertex(v);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    auto const& bits = in.bits();
    parallel::parallel_for(
        policy.pool(), std::size_t{0}, bits.num_words(),
        [&](std::size_t wi) {
          std::uint64_t word = bits.load_word(wi);
          while (word != 0) {
            unsigned const b = static_cast<unsigned>(__builtin_ctzll(word));
            word &= word - 1;
            copy_if(static_cast<T>(wi * 64 + b));
          }
        },
        /*grain=*/16);
  } else {
    in.for_each_active(copy_if);
  }
  return out;
}

/// Remove duplicate ids from a sparse frontier (sort + unique).  Determinism
/// bonus: output is sorted regardless of the racy order parallel advance
/// appended in, which makes BSP runs reproducible.
template <typename T>
void uniquify(execution::sequenced_policy policy,
              frontier::sparse_frontier<T>& f) {
  auto const probe = telemetry::make_probe("uniquify.seq", policy, f.size());
  auto& v = f.active();
  std::size_t const before = v.size();
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  probe.add_emits(0, 0, before - v.size());
  probe.set_items_out(v.size());
}

/// Parallel uniquify via a claim bitmap over the id universe: O(|F|) work,
/// no sort.  The bitmap is exactly the generation path's dedup filter, so
/// the survivors are published per `policy.frontier` — lock-free scan
/// compaction by default (deterministic first-claim-wins order per the
/// pool's chunking contract), or the `bulk`/`listing3` locked ablations.
template <typename T>
void uniquify(execution::parallel_policy policy,
              frontier::sparse_frontier<T>& f, std::size_t universe) {
  auto const probe = telemetry::make_probe("uniquify.par", policy, f.size());
  frontier::sparse_frontier<T> out;
  auto const& active = f.active();
  auto const stats = frontier::generate(
      policy.frontier, policy.pool(), active.size(), policy.grain, out,
      [&](std::size_t lo, std::size_t hi, auto&& emit) {
        for (std::size_t i = lo; i < hi; ++i)
          emit(active[i]);
      },
      &frontier::dedup_scratch(policy.pool(), universe));
  detail::flush_generate_stats(probe, policy.frontier, stats);
  probe.set_items_out(out.size());
  swap(f, out);
}

}  // namespace essentials::operators
