#pragma once

/// \file core/operators/compute.hpp
/// \brief The compute operator: apply a vertex program (a lambda over a
/// vertex id) to every element of a frontier, or to every vertex of the
/// graph — the paper's "transformations" half of the operator taxonomy.
///
/// Unlike advance, compute has no structural output; it exists to mutate
/// per-vertex algorithm state (distances, ranks, labels) in shared memory.
/// Overloads per policy keep the BSP/async distinction: `par` barriers,
/// `par_nosync` launches and returns.

#include <cstddef>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "parallel/for_each.hpp"

namespace essentials::operators {

/// Apply `fn(v)` to every active element of a sparse frontier.
template <typename P, typename T, typename F>
  requires execution::execution_policy<P>
void compute(P policy, frontier::sparse_frontier<T> const& f, F fn) {
  auto const& active = f.active();
  if constexpr (std::is_same_v<std::decay_t<P>, execution::sequenced_policy>) {
    for (T const& v : active)
      fn(v);
  } else if constexpr (std::decay_t<P>::is_synchronous) {
    parallel::parallel_for(
        policy.pool(), std::size_t{0}, active.size(),
        [&active, fn](std::size_t i) { fn(active[i]); }, policy.grain);
  } else {
    parallel::parallel_for_nowait(
        policy.pool(), std::size_t{0}, active.size(),
        [&active, fn](std::size_t i) { fn(active[i]); }, policy.grain);
  }
}

/// Apply `fn(v)` to every active element of a dense frontier.
template <typename P, typename T, typename F>
  requires execution::synchronous_policy<P>
void compute(P policy, frontier::dense_frontier<T> const& f, F fn) {
  if constexpr (std::decay_t<P>::is_parallel) {
    auto const& bits = f.bits();
    parallel::parallel_for(
        policy.pool(), std::size_t{0}, bits.num_words(),
        [&bits, fn](std::size_t wi) {
          std::uint64_t word = bits.load_word(wi);
          while (word != 0) {
            unsigned const b = static_cast<unsigned>(__builtin_ctzll(word));
            word &= word - 1;
            fn(static_cast<T>(wi * 64 + b));
          }
        },
        /*grain=*/16);
  } else {
    f.for_each_active(fn);
  }
}

/// Apply `fn(v)` to every vertex of the graph (the whole-graph vertex
/// program, e.g. one PageRank sweep).
template <typename P, typename G, typename F>
  requires execution::execution_policy<P>
void compute_vertices(P policy, G const& g, F fn) {
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  if constexpr (std::is_same_v<std::decay_t<P>, execution::sequenced_policy>) {
    for (std::size_t v = 0; v < n; ++v)
      fn(static_cast<typename G::vertex_type>(v));
  } else if constexpr (std::decay_t<P>::is_synchronous) {
    parallel::parallel_for(
        policy.pool(), std::size_t{0}, n,
        [fn](std::size_t v) { fn(static_cast<typename G::vertex_type>(v)); },
        policy.grain);
  } else {
    parallel::parallel_for_nowait(
        policy.pool(), std::size_t{0}, n,
        [fn](std::size_t v) { fn(static_cast<typename G::vertex_type>(v)); },
        policy.grain);
  }
}

}  // namespace essentials::operators
