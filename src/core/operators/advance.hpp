#pragma once

/// \file core/operators/advance.hpp
/// \brief The advance (neighbor-expand) operator family — paper Listing 3
/// generalized across traversal directions, frontier representations, and
/// execution policies.
///
/// An advance maps an input frontier to an output frontier by visiting the
/// edges incident to the input's elements and applying a user *condition*
/// lambda on the tuple {source vertex, destination vertex, edge, weight}
/// (paper §III-C).  An edge whose condition returns true contributes its
/// far endpoint to the output frontier.
///
/// Overload matrix (all share one semantic, per the paper's requirement
/// that "the operator's functionality [be] identical, even as its
/// underlying execution changes"):
///  - policy: `seq` (invoking thread) / `par` (pool + implicit barrier) /
///    `par_nosync` (pool, no barrier — caller owns synchronization).
///  - direction: `advance_push` walks out-edges via CSR;
///    `advance_pull` walks in-edges via CSC, asking whether any *active*
///    predecessor satisfies the condition.
///  - representation: sparse -> sparse, sparse -> dense, dense -> dense.
///
/// Sparse-output generation is itself a policy axis
/// (`execution::frontier_gen`, dispatched through
/// core/frontier/frontier_gen.hpp):
///  - `scan` (default): lane buffers + prefix-sum compaction — zero locks
///    and zero atomics on the output path, deterministic output order;
///  - `bulk`: lane-local buffer published under one short lock per chunk
///    (CP.43) — the previous default, kept as an ablation baseline;
///  - `listing3`: the paper's per-element-lock formulation
///    (`neighbors_expand_listing3` forces this mode regardless of policy).
/// `policy.dedup` additionally suppresses duplicate output vertices with an
/// atomic claim bitmap (output becomes a set; condition side effects still
/// run for every relaxing edge).
///
/// Telemetry: every overload opens a `telemetry::op_probe` and counts
/// *edges inspected* (condition evaluated) and *edges relaxed* (condition
/// returned true) in lane-local registers, flushed per chunk; sparse
/// generation additionally reports lock-free vs locked emit counts, dedup
/// hits, and lane-scratch reuse.  With no recording scope active this
/// costs one thread-local pointer test per call; with telemetry compiled
/// out it costs nothing (the counters become dead stores).  The counts are
/// defined so push and pull agree on a pure condition without early exit —
/// the cross-direction invariant the differential suite
/// (tests/test_differential.cpp) asserts.

#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/for_each.hpp"

namespace essentials::operators {

/// Concept for the user condition: callable on (src, dst, edge, weight).
template <typename F, typename G>
concept advance_condition =
    std::invocable<F, typename G::vertex_type, typename G::vertex_type,
                   typename G::edge_type, typename G::weight_type>;

namespace detail {

/// The dedup claim bitmap for a parallel policy, or nullptr when dedup is
/// off (thread-local scratch; cleared per call).
inline parallel::atomic_bitset* dedup_filter(
    execution::parallel_policy const& policy, std::size_t universe) {
  return policy.dedup ? &frontier::dedup_scratch(policy.pool(), universe)
                      : nullptr;
}

/// Flush a generation round's stats into the operator probe.
inline void flush_generate_stats(telemetry::op_probe const& probe,
                                 execution::frontier_gen mode,
                                 frontier::generate_stats const& stats) {
  bool const lock_free = frontier::lock_free_emits(mode);
  probe.add_emits(lock_free ? stats.emitted : 0,
                  lock_free ? 0 : stats.emitted, stats.dedup_hits);
  probe.set_scratch_reused(stats.scratch_reused);
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Push advance: sparse -> sparse
// ---------------------------------------------------------------------------

/// Sequential push advance — the reference semantics.
template <typename G, typename Cond>
  requires advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_push(
    execution::sequenced_policy policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  auto const probe =
      telemetry::make_probe("advance_push.seq", policy, in.size());
  frontier::sparse_frontier<V> out;
  std::size_t inspected = 0, relaxed = 0;
  for (V const v : in.active()) {
    for (auto const e : g.get_edges(v)) {
      V const n = g.get_dest_vertex(e);
      auto const w = g.get_edge_weight(e);
      ++inspected;
      if (cond(v, n, e, w)) {
        ++relaxed;
        out.add_vertex(n);
      }
    }
  }
  probe.add_edges(inspected, relaxed);
  probe.set_items_out(out.size());
  return out;
}

/// Parallel synchronous push advance (one BSP superstep).  The sparse
/// output is generated per `policy.frontier`: scan compaction (default,
/// lock-free), bulk append (one lock per chunk), or Listing 3 per-element
/// locking — with optional claim-bitmap dedup (`policy.dedup`).
template <typename G, typename Cond>
  requires advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_push(
    execution::parallel_policy policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  auto const probe =
      telemetry::make_probe("advance_push.par", policy, in.size());
  frontier::sparse_frontier<V> out;
  auto const& active = in.active();
  parallel::atomic_bitset* const dedup = detail::dedup_filter(
      policy, static_cast<std::size_t>(g.get_num_vertices()));
  auto const stats = frontier::generate(
      policy.frontier, policy.pool(), active.size(), policy.edge_grain, out,
      [&](std::size_t lo, std::size_t hi, auto&& emit) {
        std::size_t inspected = 0, relaxed = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          V const v = active[i];
          for (auto const e : g.get_edges(v)) {
            V const n = g.get_dest_vertex(e);
            auto const w = g.get_edge_weight(e);
            ++inspected;
            if (cond(v, n, e, w)) {
              ++relaxed;
              emit(n);
            }
          }
        }
        probe.add_edges(inspected, relaxed);
      },
      dedup);
  detail::flush_generate_stats(probe, policy.frontier, stats);
  probe.set_items_out(out.size());
  return out;
}

/// Parallel asynchronous push advance: chunks are launched and the call
/// returns immediately; the caller synchronizes via
/// `policy.pool().wait_idle()` (or not at all).  Output is appended to the
/// caller-owned `out` frontier.  There is no barrier behind which to run a
/// compaction phase, so `frontier_gen::scan` degrades to `bulk` (lane
/// buffer + one locked append per task); `listing3` is honored for
/// ablations.  The telemetry record retires when the last chunk finishes
/// (items_out is not sampled — the output is still owned by the caller);
/// keep any recording scope alive across the eventual `wait_idle()`.
template <typename G, typename Cond>
  requires advance_condition<Cond, G>
void advance_push(execution::parallel_nosync_policy policy, G const& g,
                  frontier::sparse_frontier<typename G::vertex_type> const& in,
                  Cond cond,
                  frontier::sparse_frontier<typename G::vertex_type>& out) {
  using V = typename G::vertex_type;
  auto const probe = telemetry::make_probe("advance_push.par_nosync", policy,
                                           in.size(), /*async=*/true);
  auto const state = probe.share();  // null when not recording
  auto const& active = in.active();
  bool const per_element =
      policy.frontier == execution::frontier_gen::listing3;
  parallel::parallel_for_nowait(
      policy.pool(), std::size_t{0}, active.size(),
      [&g, &active, &out, cond, state, per_element](std::size_t i) {
        V const v = active[i];
        std::vector<V> local;
        std::size_t inspected = 0, relaxed = 0;
        for (auto const e : g.get_edges(v)) {
          V const n = g.get_dest_vertex(e);
          auto const w = g.get_edge_weight(e);
          ++inspected;
          if (cond(v, n, e, w)) {
            ++relaxed;
            if (per_element)
              out.add_vertex(n);  // per-element lock inside the frontier
            else
              local.push_back(n);
          }
        }
        if (!per_element)
          out.append_bulk(local.data(), local.size());
        telemetry::flush_edges(state, inspected, relaxed);
        telemetry::flush_emits(state, 0, relaxed);
      },
      policy.edge_grain);
}

/// Paper Listing 3, verbatim semantics: parallel push advance whose output
/// appends are serialized *per discovered neighbor* — the lock is the one
/// inside `sparse_frontier::add_vertex` (Listing 3's mutex-protected
/// `output.add_vertex(n)`), so the baseline exercises the public frontier
/// API rather than poking `active()` directly.  Equivalent to
/// `advance_push(policy.with_frontier(frontier_gen::listing3), ...)`; kept
/// as a named entry point for the operator-ablation bench
/// (bench_operators) that quantifies what buffering and scan compaction
/// buy.
template <typename G, typename Cond>
  requires advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> neighbors_expand_listing3(
    execution::parallel_policy policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  auto const probe =
      telemetry::make_probe("neighbors_expand_listing3.par", policy, in.size());
  frontier::sparse_frontier<V> out;
  auto const& active = in.active();
  parallel::atomic_bitset* const dedup = detail::dedup_filter(
      policy, static_cast<std::size_t>(g.get_num_vertices()));
  auto const stats = frontier::generate_listing3(
      policy.pool(), active.size(), policy.edge_grain, out,
      [&](std::size_t lo, std::size_t hi, auto&& emit) {
        std::size_t inspected = 0, relaxed = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          V const v = active[i];
          for (auto const e : g.get_edges(v)) {
            V const n = g.get_dest_vertex(e);
            auto const w = g.get_edge_weight(e);
            ++inspected;
            if (cond(v, n, e, w)) {
              ++relaxed;
              emit(n);
            }
          }
        }
        probe.add_edges(inspected, relaxed);
      },
      dedup);
  detail::flush_generate_stats(probe, execution::frontier_gen::listing3,
                               stats);
  probe.set_items_out(out.size());
  return out;
}

/// The paper's name for push advance.  `neighbors_expand(policy, g, f,
/// cond)` reads exactly like Listing 3/4.
template <typename P, typename G, typename Cond>
auto neighbors_expand(P&& policy, G const& g,
                      frontier::sparse_frontier<typename G::vertex_type> const& in,
                      Cond cond) {
  return advance_push(std::forward<P>(policy), g, in, cond);
}

// ---------------------------------------------------------------------------
// Push advance: sparse -> dense and dense -> dense
// ---------------------------------------------------------------------------

/// Push advance producing a dense (bitmap) output frontier: discovered
/// neighbors are recorded with atomic bit-sets, which deduplicates the
/// output for free.  Works for both seq and par policies.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::dense_frontier<typename G::vertex_type> advance_push_to_dense(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  auto const probe =
      telemetry::make_probe("advance_push_to_dense", policy, in.size());
  frontier::dense_frontier<V> out(
      static_cast<std::size_t>(g.get_num_vertices()));
  auto const& active = in.active();
  auto const body = [&](std::size_t i) {
    V const v = active[i];
    std::size_t inspected = 0, relaxed = 0;
    for (auto const e : g.get_edges(v)) {
      V const n = g.get_dest_vertex(e);
      auto const w = g.get_edge_weight(e);
      ++inspected;
      if (cond(v, n, e, w)) {
        ++relaxed;
        out.add_vertex(n);
      }
    }
    probe.add_edges(inspected, relaxed);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::parallel_for(policy.pool(), std::size_t{0}, active.size(), body,
                           policy.edge_grain);
  } else {
    for (std::size_t i = 0; i < active.size(); ++i)
      body(i);
  }
  if (probe)
    probe.set_items_out(out.size());  // popcount: only pay when recording
  return out;
}

/// Dense -> dense push advance: iterate set bits of the input bitmap.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::dense_frontier<typename G::vertex_type> advance_push(
    P policy, G const& g,
    frontier::dense_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  auto const probe = telemetry::make_probe(
      "advance_push.dense", policy, telemetry::probe_items(in));
  frontier::dense_frontier<V> out(in.universe());
  auto const& bits = in.bits();
  auto const word_body = [&](std::size_t wi) {
    std::uint64_t word = bits.load_word(wi);
    std::size_t inspected = 0, relaxed = 0;
    while (word != 0) {
      unsigned const b = static_cast<unsigned>(__builtin_ctzll(word));
      word &= word - 1;
      V const v = static_cast<V>(wi * 64 + b);
      for (auto const e : g.get_edges(v)) {
        V const n = g.get_dest_vertex(e);
        auto const w = g.get_edge_weight(e);
        ++inspected;
        if (cond(v, n, e, w)) {
          ++relaxed;
          out.add_vertex(n);
        }
      }
    }
    probe.add_edges(inspected, relaxed);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    // One word covers 64 vertices, so the per-word grain divides the
    // (already edge-weighted) advance grain by 64, floored at 1.
    parallel::parallel_for(policy.pool(), std::size_t{0}, bits.num_words(),
                           word_body,
                           std::max<std::size_t>(policy.edge_grain / 64, 1));
  } else {
    for (std::size_t wi = 0; wi < bits.num_words(); ++wi)
      word_body(wi);
  }
  if (probe)
    probe.set_items_out(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Pull advance (CSC)
// ---------------------------------------------------------------------------

/// Pull advance: every vertex of the graph scans its *in*-edges and asks
/// whether an active predecessor satisfies the condition; if so the vertex
/// joins the output frontier.  The input must support O(1) membership
/// (dense frontier).  `early_exit` stops scanning a vertex's in-edges at
/// the first hit — correct for BFS-like "any parent" programs; keep false
/// for programs that must see every incident active edge (e.g. pull SSSP
/// relaxations).
///
/// Output invariant: a vertex is activated through the public frontier API
/// exactly once, no matter how many of its in-edges relax — the condition
/// is still evaluated for *every* active in-edge when `early_exit` is
/// false (relaxation side effects must all run), but repeat hits no longer
/// re-activate the output.  Telemetry `edges_inspected` counts only edges
/// whose source is active (the membership probe is not an inspection), so
/// the count is comparable with the push direction.
template <bool early_exit = false, typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G> &&
           (G::has_csc)
frontier::dense_frontier<typename G::vertex_type> advance_pull(
    P policy, G const& g,
    frontier::dense_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  auto const probe =
      telemetry::make_probe("advance_pull", policy, telemetry::probe_items(in));
  frontier::dense_frontier<V> out(n);
  auto const body = [&](std::size_t vi) {
    V const v = static_cast<V>(vi);
    std::size_t inspected = 0, relaxed = 0;
    bool added = false;
    for (auto const e : g.get_in_edges(v)) {
      V const u = g.get_in_source_vertex(e);
      if (!in.contains(u))
        continue;
      auto const w = g.get_in_edge_weight(e);
      ++inspected;
      if (cond(u, v, e, w)) {
        ++relaxed;
        if (!added) {
          out.add_vertex(v);
          added = true;
        }
        if constexpr (early_exit)
          break;
      }
    }
    probe.add_edges(inspected, relaxed);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::parallel_for(policy.pool(), std::size_t{0}, n, body,
                           policy.edge_grain);
  } else {
    for (std::size_t vi = 0; vi < n; ++vi)
      body(vi);
  }
  if (probe)
    probe.set_items_out(out.size());
  return out;
}

// ---------------------------------------------------------------------------
// Edge-centric advance
// ---------------------------------------------------------------------------

/// Expand a vertex frontier into the frontier of its incident out-edge ids
/// (vertex-centric -> edge-centric handoff, paper §III-C's edge frontier).
/// Parallel policies route through the policy's frontier-generation
/// strategy (edge ids are unique by construction, so dedup never applies).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
frontier::sparse_frontier<typename G::edge_type> expand_to_edges(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in) {
  using E = typename G::edge_type;
  auto const probe = telemetry::make_probe("expand_to_edges", policy, in.size());
  frontier::sparse_frontier<E> out;
  auto const& active = in.active();
  auto const chunk = [&](std::size_t lo, std::size_t hi, auto&& emit) {
    std::size_t count = 0;
    for (std::size_t i = lo; i < hi; ++i)
      for (auto const e : g.get_edges(active[i])) {
        emit(e);
        ++count;
      }
    probe.add_edges(count, count);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    auto const stats =
        frontier::generate(policy.frontier, policy.pool(), active.size(),
                           policy.edge_grain, out, chunk);
    detail::flush_generate_stats(probe, policy.frontier, stats);
  } else {
    auto emit = [&out](E e) { out.active().push_back(e); };
    chunk(0, active.size(), emit);
  }
  probe.set_items_out(out.size());
  return out;
}

/// Edge-centric advance: the input frontier holds CSR edge ids; the
/// condition sees the usual {src, dst, edge, weight} tuple and a true
/// return contributes the edge's destination vertex to the output.
/// Parallel policies route through the policy's frontier-generation
/// strategy and honor `policy.dedup`.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_edges(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::edge_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  auto const probe = telemetry::make_probe("advance_edges", policy, in.size());
  frontier::sparse_frontier<V> out;
  auto const& active = in.active();
  auto const chunk = [&](std::size_t lo, std::size_t hi, auto&& emit) {
    std::size_t relaxed = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      auto const e = active[i];
      V const src = g.get_source_vertex(e);
      V const dst = g.get_dest_vertex(e);
      auto const w = g.get_edge_weight(e);
      if (cond(src, dst, e, w)) {
        emit(dst);
        ++relaxed;
      }
    }
    probe.add_edges(hi - lo, relaxed);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::atomic_bitset* const dedup = detail::dedup_filter(
        policy, static_cast<std::size_t>(g.get_num_vertices()));
    // Edge-centric bodies do O(1) work per index: use the element grain.
    auto const stats =
        frontier::generate(policy.frontier, policy.pool(), active.size(),
                           policy.grain, out, chunk, dedup);
    detail::flush_generate_stats(probe, policy.frontier, stats);
  } else {
    auto emit = [&out](V v) { out.active().push_back(v); };
    chunk(0, active.size(), emit);
  }
  probe.set_items_out(out.size());
  return out;
}

}  // namespace essentials::operators
