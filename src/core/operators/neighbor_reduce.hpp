#pragma once

/// \file core/operators/neighbor_reduce.hpp
/// \brief Neighborhood reduction operator: for each vertex of a frontier
/// (or of the whole graph), fold a value over its incident edges — the
/// gather half of gather-apply-scatter, as a first-class operator.
///
/// `neighbor_reduce` folds over *out*-edges (CSR); `in_neighbor_reduce`
/// folds over *in*-edges (CSC) — the pull-side gather PageRank/HITS-style
/// fixed points are built from.  The map lambda sees the full
/// {src, dst, edge, weight} tuple (paper §III-C); results land in a
/// caller-provided output array indexed by vertex, so no atomics are
/// needed: each vertex's fold is owned by one lane.
///
/// `neighbor_reduce_activate` closes the GAS loop: gather, then feed each
/// vertex's folded value to an *activate* predicate; survivors form the
/// next sparse frontier, published through the policy's frontier-generation
/// strategy (`execution::frontier_gen`) — lock-free scan compaction by
/// default, with the locked `bulk`/`listing3` paths kept as ablations.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/advance_balanced.hpp"
#include "core/operators/compute.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "parallel/atomic_bitset.hpp"

namespace essentials::operators {

/// out[v] = fold of map(v, dst, e, w) over v's out-edges, for every vertex
/// v in the graph.
template <typename P, typename G, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csr)
void neighbor_reduce(P policy, G const& g, R identity, MapF map,
                     CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute_vertices(policy, g, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_edges(v))
      acc = combine(acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// out[v] = fold of map(src, v, e, w) over v's in-edges (pull gather).
template <typename P, typename G, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csc)
void in_neighbor_reduce(P policy, G const& g, R identity, MapF map,
                        CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute_vertices(policy, g, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_in_edges(v))
      acc = combine(acc, map(g.get_in_source_vertex(e), v, e,
                             g.get_in_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// Frontier-restricted variant: only active vertices fold; inactive
/// entries of `out` are untouched.
template <typename P, typename G, typename T, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csr)
void neighbor_reduce(P policy, G const& g,
                     frontier::sparse_frontier<T> const& f, R identity,
                     MapF map, CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute(policy, f, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_edges(v))
      acc = combine(acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// Gather-and-activate: fold each active vertex's out-neighborhood like the
/// frontier-restricted `neighbor_reduce` (results land in `out[v]`), then
/// keep the vertex in the returned frontier iff `activate(v, acc)` is true.
/// This is the operator shape iterative gather algorithms (delta-PageRank,
/// label propagation) use to shrink their active set each round.
///
/// The output frontier is produced by the policy's generation strategy and
/// honors `policy.dedup` (a no-op when the input frontier is already a
/// set, but it keeps repeated activations out when the caller's input
/// carries duplicates).  The per-index body does O(out-degree) work, so
/// the parallel branch uses `policy.edge_grain`.
///
/// Load balancing (`policy.balance`): a fold's output slot is owned by its
/// vertex, so the edge-balanced decomposition (which splits a vertex's fold
/// across lanes mid-stream) does not apply and resolves to thread-mapped.
/// `degree_class` (and `auto_select` resolving to it) *does* apply: hub
/// vertices with out-degree >= the huge cutoff are folded cooperatively —
/// every lane folds a block of the hub's edges into a private partial and
/// the partials are combined in block order.  This changes the combine
/// *association* (not the operand order), so it is bit-identical for
/// integer folds and exact for any associative combine; floating-point
/// combines may see reassociation-level differences on hubs, same as any
/// blocked reduction.  The decision lands in telemetry (schema v7).
template <typename P, typename G, typename T, typename R, typename MapF,
          typename CombineF, typename ActivateF>
  requires execution::synchronous_policy<P> && (G::has_csr)
frontier::sparse_frontier<T> neighbor_reduce_activate(
    P policy, G const& g, frontier::sparse_frontier<T> const& f, R identity,
    MapF map, CombineF combine, ActivateF activate, R* out) {
  using V = typename G::vertex_type;
  auto const probe =
      telemetry::make_probe("neighbor_reduce_activate", policy, f.size());
  frontier::sparse_frontier<T> next;
  auto const& active = f.active();
  auto const chunk = [&](std::size_t lo, std::size_t hi, auto&& emit) {
    std::size_t folded = 0, activated = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      V const v = active[i];
      R acc = identity;
      for (auto const e : g.get_edges(v)) {
        acc = combine(acc,
                      map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
        ++folded;
      }
      out[static_cast<std::size_t>(v)] = acc;
      if (activate(v, acc)) {
        ++activated;
        emit(v);
      }
    }
    probe.add_edges(folded, activated);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    using E = typename G::edge_type;
    using lb = execution::load_balance;
    auto& pool = policy.pool();
    lb strategy = policy.balance;
    bool const autod = strategy == lb::auto_select;
    if (autod) {
      strategy = detail::auto_select_strategy(
          active.size(), graph::cached_out_degree_stats(g), pool.size() + 1,
          policy.edge_grain_floor);
    }
    // Vertex-aligned output: edge_balanced cannot split a fold, so only
    // the degree-class hub treatment applies (see the doc comment).
    bool coop = strategy == lb::degree_class;
    std::vector<std::size_t> huge_idx;  // indices into active[], in order
    if (coop) {
      for (std::size_t i = 0; i < active.size(); ++i)
        if (static_cast<std::size_t>(g.get_out_degree(active[i])) >=
            detail::degree_class_huge_cutoff)
          huge_idx.push_back(i);
      coop = !huge_idx.empty();
    }
    parallel::atomic_bitset* const dedup = detail::dedup_filter(
        policy, static_cast<std::size_t>(g.get_num_vertices()));
    frontier::generate_stats stats;
    if (!coop) {
      stats = frontier::generate(policy.frontier, pool, active.size(),
                                 policy.edge_grain, next, chunk, dedup);
      if (policy.balance != lb::thread_mapped)
        probe.set_load_balance("thread_mapped", autod);
    } else {
      // Main phase: thread-mapped fold over everything but the hubs (same
      // chunk boundaries as the plain path — hubs are skipped in place, so
      // the survivor order is a subsequence of the plain path's).
      auto const chunk_skip = [&](std::size_t lo, std::size_t hi,
                                  auto&& emit) {
        std::size_t folded = 0, activated = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          V const v = active[i];
          if (static_cast<std::size_t>(g.get_out_degree(v)) >=
              detail::degree_class_huge_cutoff)
            continue;
          R acc = identity;
          for (auto const e : g.get_edges(v)) {
            acc = combine(
                acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
            ++folded;
          }
          out[static_cast<std::size_t>(v)] = acc;
          if (activate(v, acc)) {
            ++activated;
            emit(v);
          }
        }
        probe.add_edges(folded, activated);
      };
      stats = frontier::generate(policy.frontier, pool, active.size(),
                                 policy.edge_grain, next, chunk_skip, dedup);

      // Hub phase: every lane folds a block of the hub's edge range into a
      // private partial (chunk `lo / step` owns its slot); partials are
      // combined serially in block order.  Activations append after the
      // main phase, in frontier order.
      for (std::size_t const i : huge_idx) {
        V const v = active[i];
        auto const edges = g.get_edges(v);
        E const base = *edges.begin();
        std::size_t const deg =
            static_cast<std::size_t>(g.get_out_degree(v));
        std::size_t const step = frontier::detail::chunk_step(
            pool, deg,
            std::max<std::size_t>(policy.grain, policy.edge_grain_floor));
        std::size_t const blocks = (deg + step - 1) / step;
        std::vector<R> partials(blocks, identity);
        pool.run_blocked(
            deg,
            [&](std::size_t lo, std::size_t hi) {
              R acc = identity;
              for (std::size_t k = lo; k < hi; ++k) {
                E const e = static_cast<E>(base + static_cast<E>(k));
                acc = combine(acc, map(v, g.get_dest_vertex(e), e,
                                       g.get_edge_weight(e)));
              }
              partials[lo / step] = acc;
            },
            step);
        R acc = identity;
        for (std::size_t b = 0; b < blocks; ++b)
          acc = combine(acc, partials[b]);
        out[static_cast<std::size_t>(v)] = acc;
        bool const act = activate(v, acc);
        probe.add_edges(deg, act ? 1 : 0);
        if (act) {
          if (dedup != nullptr &&
              !dedup->test_and_set(static_cast<std::size_t>(v))) {
            ++stats.dedup_hits;
          } else {
            next.active().push_back(v);
            ++stats.emitted;
          }
        }
      }
      probe.set_load_balance("degree_class", autod);
    }
    detail::flush_generate_stats(probe, policy.frontier, stats);
  } else {
    auto emit = [&next](T v) { next.active().push_back(v); };
    chunk(0, active.size(), emit);
  }
  probe.set_items_out(next.size());
  return next;
}

}  // namespace essentials::operators
