#pragma once

/// \file core/operators/neighbor_reduce.hpp
/// \brief Neighborhood reduction operator: for each vertex of a frontier
/// (or of the whole graph), fold a value over its incident edges — the
/// gather half of gather-apply-scatter, as a first-class operator.
///
/// `neighbor_reduce` folds over *out*-edges (CSR); `in_neighbor_reduce`
/// folds over *in*-edges (CSC) — the pull-side gather PageRank/HITS-style
/// fixed points are built from.  The map lambda sees the full
/// {src, dst, edge, weight} tuple (paper §III-C); results land in a
/// caller-provided output array indexed by vertex, so no atomics are
/// needed: each vertex's fold is owned by one lane.
///
/// `neighbor_reduce_activate` closes the GAS loop: gather, then feed each
/// vertex's folded value to an *activate* predicate; survivors form the
/// next sparse frontier, published through the policy's frontier-generation
/// strategy (`execution::frontier_gen`) — lock-free scan compaction by
/// default, with the locked `bulk`/`listing3` paths kept as ablations.

#include <cstddef>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/compute.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "parallel/atomic_bitset.hpp"

namespace essentials::operators {

/// out[v] = fold of map(v, dst, e, w) over v's out-edges, for every vertex
/// v in the graph.
template <typename P, typename G, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csr)
void neighbor_reduce(P policy, G const& g, R identity, MapF map,
                     CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute_vertices(policy, g, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_edges(v))
      acc = combine(acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// out[v] = fold of map(src, v, e, w) over v's in-edges (pull gather).
template <typename P, typename G, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csc)
void in_neighbor_reduce(P policy, G const& g, R identity, MapF map,
                        CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute_vertices(policy, g, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_in_edges(v))
      acc = combine(acc, map(g.get_in_source_vertex(e), v, e,
                             g.get_in_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// Frontier-restricted variant: only active vertices fold; inactive
/// entries of `out` are untouched.
template <typename P, typename G, typename T, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csr)
void neighbor_reduce(P policy, G const& g,
                     frontier::sparse_frontier<T> const& f, R identity,
                     MapF map, CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute(policy, f, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_edges(v))
      acc = combine(acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// Gather-and-activate: fold each active vertex's out-neighborhood like the
/// frontier-restricted `neighbor_reduce` (results land in `out[v]`), then
/// keep the vertex in the returned frontier iff `activate(v, acc)` is true.
/// This is the operator shape iterative gather algorithms (delta-PageRank,
/// label propagation) use to shrink their active set each round.
///
/// The output frontier is produced by the policy's generation strategy and
/// honors `policy.dedup` (a no-op when the input frontier is already a
/// set, but it keeps repeated activations out when the caller's input
/// carries duplicates).  The per-index body does O(out-degree) work, so
/// the parallel branch uses `policy.edge_grain`.
template <typename P, typename G, typename T, typename R, typename MapF,
          typename CombineF, typename ActivateF>
  requires execution::synchronous_policy<P> && (G::has_csr)
frontier::sparse_frontier<T> neighbor_reduce_activate(
    P policy, G const& g, frontier::sparse_frontier<T> const& f, R identity,
    MapF map, CombineF combine, ActivateF activate, R* out) {
  using V = typename G::vertex_type;
  auto const probe =
      telemetry::make_probe("neighbor_reduce_activate", policy, f.size());
  frontier::sparse_frontier<T> next;
  auto const& active = f.active();
  auto const chunk = [&](std::size_t lo, std::size_t hi, auto&& emit) {
    std::size_t folded = 0, activated = 0;
    for (std::size_t i = lo; i < hi; ++i) {
      V const v = active[i];
      R acc = identity;
      for (auto const e : g.get_edges(v)) {
        acc = combine(acc,
                      map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
        ++folded;
      }
      out[static_cast<std::size_t>(v)] = acc;
      if (activate(v, acc)) {
        ++activated;
        emit(v);
      }
    }
    probe.add_edges(folded, activated);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::atomic_bitset* const dedup = detail::dedup_filter(
        policy, static_cast<std::size_t>(g.get_num_vertices()));
    auto const stats =
        frontier::generate(policy.frontier, policy.pool(), active.size(),
                           policy.edge_grain, next, chunk, dedup);
    detail::flush_generate_stats(probe, policy.frontier, stats);
  } else {
    auto emit = [&next](T v) { next.active().push_back(v); };
    chunk(0, active.size(), emit);
  }
  probe.set_items_out(next.size());
  return next;
}

}  // namespace essentials::operators
