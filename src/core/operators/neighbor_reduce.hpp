#pragma once

/// \file core/operators/neighbor_reduce.hpp
/// \brief Neighborhood reduction operator: for each vertex of a frontier
/// (or of the whole graph), fold a value over its incident edges — the
/// gather half of gather-apply-scatter, as a first-class operator.
///
/// `neighbor_reduce` folds over *out*-edges (CSR); `in_neighbor_reduce`
/// folds over *in*-edges (CSC) — the pull-side gather PageRank/HITS-style
/// fixed points are built from.  The map lambda sees the full
/// {src, dst, edge, weight} tuple (paper §III-C); results land in a
/// caller-provided output array indexed by vertex, so no atomics are
/// needed: each vertex's fold is owned by one lane.

#include <cstddef>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"

namespace essentials::operators {

/// out[v] = fold of map(v, dst, e, w) over v's out-edges, for every vertex
/// v in the graph.
template <typename P, typename G, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csr)
void neighbor_reduce(P policy, G const& g, R identity, MapF map,
                     CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute_vertices(policy, g, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_edges(v))
      acc = combine(acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// out[v] = fold of map(src, v, e, w) over v's in-edges (pull gather).
template <typename P, typename G, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csc)
void in_neighbor_reduce(P policy, G const& g, R identity, MapF map,
                        CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute_vertices(policy, g, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_in_edges(v))
      acc = combine(acc, map(g.get_in_source_vertex(e), v, e,
                             g.get_in_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

/// Frontier-restricted variant: only active vertices fold; inactive
/// entries of `out` are untouched.
template <typename P, typename G, typename T, typename R, typename MapF,
          typename CombineF>
  requires execution::synchronous_policy<P> && (G::has_csr)
void neighbor_reduce(P policy, G const& g,
                     frontier::sparse_frontier<T> const& f, R identity,
                     MapF map, CombineF combine, R* out) {
  using V = typename G::vertex_type;
  compute(policy, f, [&g, identity, map, combine, out](V v) {
    R acc = identity;
    for (auto const e : g.get_edges(v))
      acc = combine(acc, map(v, g.get_dest_vertex(e), e, g.get_edge_weight(e)));
    out[static_cast<std::size_t>(v)] = acc;
  });
}

}  // namespace essentials::operators
