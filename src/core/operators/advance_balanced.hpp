#pragma once

/// \file core/operators/advance_balanced.hpp
/// \brief Load-balanced advance — the optimization the paper's §IV-C points
/// at: "This is where the bulk of optimizations can be introduced, such as
/// utilizing data parallelism and load balancing."
///
/// The plain (thread-mapped) advance assigns *vertices* to lanes, so one
/// celebrity vertex with 10^5 out-edges serializes an entire lane while the
/// others idle — the classic power-law pathology.  The edge-balanced
/// variant assigns *edges* to lanes instead:
///   1. exclusive-scan the frontier's out-degrees -> per-vertex work
///      offsets and the total edge work W;
///   2. split [0, W) into equal chunks;
///   3. each lane binary-searches the offsets for its starting (vertex,
///      intra-vertex) position and walks edges linearly from there.
/// The result is identical to advance_push (same condition, same output
/// multiset); only the work decomposition changes.  bench_operators
/// measures the two against each other on skewed frontiers.
///
/// Output generation honors the policy's `frontier_gen` strategy and
/// `dedup` flag exactly like advance_push: the default scan-compaction
/// path publishes discovered neighbors with no locks or atomics.  The
/// grain here is measured in *edges* (each index of the blocked range is
/// one edge of work), so the element-wise `policy.grain` is the right
/// knob — but we floor it at 64 edges so tiny grains cannot shred the
/// binary-search amortization.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/for_each.hpp"

namespace essentials::operators {

/// Edge-balanced push advance: sparse -> sparse, synchronous policies.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_push_edge_balanced(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;

  auto const& active = in.active();
  std::size_t const f = active.size();
  auto const probe =
      telemetry::make_probe("advance_push_edge_balanced", policy, f);
  frontier::sparse_frontier<V> out;
  if (f == 0)
    return out;

  // Pass 1: per-vertex work offsets (exclusive scan of out-degrees).
  std::vector<std::size_t> offsets(f + 1, 0);
  for (std::size_t i = 0; i < f; ++i)
    offsets[i + 1] =
        offsets[i] + static_cast<std::size_t>(g.get_out_degree(active[i]));
  std::size_t const total_work = offsets[f];
  if (total_work == 0)
    return out;

  // Pass 2: edge-parallel expansion.  Each chunk of the edge-work range
  // locates its starting vertex once, then walks linearly, funneling hits
  // through the generation path's emit closure.
  auto const process_range = [&](std::size_t wlo, std::size_t whi,
                                 auto&& emit) {
    // First vertex whose work range intersects [wlo, whi).
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.end(), wlo) -
        offsets.begin()) - 1;
    std::size_t w = wlo;
    std::size_t relaxed = 0;
    while (w < whi && i < f) {
      V const v = active[i];
      auto const edges = g.get_edges(v);
      E const base = *edges.begin();
      std::size_t const v_begin = offsets[i];
      std::size_t const v_end = offsets[i + 1];
      std::size_t const lo = w - v_begin;                  // intra-vertex
      std::size_t const hi = std::min(whi, v_end) - v_begin;
      for (std::size_t k = lo; k < hi; ++k) {
        E const e = static_cast<E>(base + static_cast<E>(k));
        V const n = g.get_dest_vertex(e);
        auto const weight = g.get_edge_weight(e);
        if (cond(v, n, e, weight)) {
          ++relaxed;
          emit(n);
        }
      }
      w = v_begin + hi;
      ++i;
    }
    probe.add_edges(whi - wlo, relaxed);
  };

  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::atomic_bitset* const dedup = detail::dedup_filter(
        policy, static_cast<std::size_t>(g.get_num_vertices()));
    auto const stats = frontier::generate(
        policy.frontier, policy.pool(), total_work,
        std::max<std::size_t>(policy.grain, 64), out, process_range, dedup);
    detail::flush_generate_stats(probe, policy.frontier, stats);
  } else {
    auto emit = [&out](V n) { out.active().push_back(n); };
    process_range(0, total_work, emit);
  }
  probe.set_items_out(out.size());
  return out;
}

}  // namespace essentials::operators
