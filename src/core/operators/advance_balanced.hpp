#pragma once

/// \file core/operators/advance_balanced.hpp
/// \brief Load-balanced advance strategies — the optimization the paper's
/// §IV-C points at: "This is where the bulk of optimizations can be
/// introduced, such as utilizing data parallelism and load balancing."
///
/// The plain (thread-mapped) advance assigns *vertices* to lanes, so one
/// celebrity vertex with 10^5 out-edges serializes an entire lane while the
/// others idle — the classic power-law pathology.  This header provides the
/// alternative decompositions and the dispatcher that makes the choice a
/// policy axis (`execution::load_balance`):
///
///  - **edge_balanced** (`advance_push_edge_balanced`) assigns *edges* to
///    lanes:
///      1. exclusive-scan the frontier's out-degrees -> per-vertex work
///         offsets and the total edge work W (the scan itself runs on the
///         pool via `parallel::exclusive_scan_map` once the frontier is big
///         enough to amortize it);
///      2. split [0, W) into equal chunks;
///      3. each lane binary-searches the offsets for its starting (vertex,
///         intra-vertex) position and walks edges linearly from there.
///  - **degree_class** (`advance_push_degree_class`) is the TWC-style
///    triage: one pass buckets the frontier by out-degree — small vertices
///    (<= 32 edges) stay thread-mapped, medium ones go through the
///    edge-balanced machinery, and huge hubs (>= 4096 edges) are each
///    expanded cooperatively by every lane.  When only a few hubs cause the
///    skew this avoids the full scan + binary search over the whole
///    frontier.
///  - **advance_balanced** dispatches on `policy.balance`; `auto_select`
///    consults the frontier size, its estimated edge work and the graph's
///    cached degree summary (graph/properties.hpp) every superstep, and the
///    decision lands in telemetry (schema v7).
///
/// Every strategy computes the same function as advance_push (same
/// condition evaluations, same output multiset); only the work
/// decomposition changes — the differential suite
/// (tests/test_differential.cpp, LoadBalanceDifferential) pins this across
/// generation strategies, substrates and graph families.  bench_operators
/// measures the strategies against each other on skewed frontiers
/// (BENCH_loadbalance.json).
///
/// Output generation honors the policy's `frontier_gen` strategy and
/// `dedup` flag exactly like advance_push.  Grains in the edge domain
/// (edge-balanced chunks, degree-class medium/huge phases) use
/// `policy.grain` floored at `policy.edge_grain_floor` (default 64, env
/// `ESSENTIALS_EDGE_GRAIN`) so tiny grains cannot shred the binary-search
/// amortization.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "graph/properties.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/for_each.hpp"
#include "parallel/scan.hpp"

namespace essentials::operators {

namespace detail {

/// Degree-class cutoffs: a vertex is "small" (thread-mapped) when its whole
/// neighborhood is cheaper than one edge-balanced chunk would be, "huge"
/// (cooperatively expanded) when it alone carries more work than a typical
/// lane's fair share of a superstep.  Fixed constants keep the triage —
/// and therefore the output — independent of the host.
inline constexpr std::size_t degree_class_small_cutoff = 32;
inline constexpr std::size_t degree_class_huge_cutoff = 4096;

/// Below this frontier size the degree scan runs serially: the blocked
/// parallel scan costs two sweeps plus two barriers, which only pays for
/// itself on big frontiers.  The offsets are identical either way (integer
/// sums), so this is a pure latency knob.
inline constexpr std::size_t parallel_degree_scan_cutoff = 2048;

/// Pooled per-superstep offsets scratch for the edge-balanced degree scan,
/// thread_local to the coordinating thread like the frontier-gen lane
/// buffers: steady-state supersteps reallocate nothing.  `reused` reports
/// whether the capacity arrived warm (ticks the telemetry `scratch_reused`
/// flag).
inline std::vector<std::size_t>& balanced_offsets_scratch(std::size_t n,
                                                          bool& reused) {
  thread_local std::vector<std::size_t> offsets;
  reused = offsets.capacity() >= n;
  offsets.resize(n);
  return offsets;
}

/// Per-chunk triage lists for the degree-class strategy (small / medium /
/// huge, in frontier order within a chunk).  Chunk-indexed like the
/// frontier-gen lane buffers: each run_blocked chunk owns one entry, the
/// coordinating thread concatenates in chunk order, so the class lists are
/// deterministic subsequences of the frontier.
template <typename V>
struct triage_lists {
  std::vector<V> small, medium, huge;
};

template <typename V>
std::vector<triage_lists<V>>& triage_scratch(std::size_t chunks) {
  thread_local std::vector<triage_lists<V>> lanes;
  if (lanes.size() < chunks)
    lanes.resize(chunks);
  for (std::size_t c = 0; c < chunks; ++c) {
    lanes[c].small.clear();
    lanes[c].medium.clear();
    lanes[c].huge.clear();
  }
  return lanes;
}

template <typename V>
triage_lists<V>& triage_buckets() {
  thread_local triage_lists<V> buckets;
  buckets.small.clear();
  buckets.medium.clear();
  buckets.huge.clear();
  return buckets;
}

struct edge_balanced_result {
  frontier::generate_stats stats;
  bool offsets_warm = false;
  std::size_t total_work = 0;
};

/// The edge-balanced expansion core over an arbitrary vertex list, shared
/// by `advance_push_edge_balanced` (whole frontier) and the degree-class
/// medium bucket.  Replaces `out`'s contents (it routes through
/// `frontier::generate`).
template <typename G, typename Cond>
edge_balanced_result edge_balanced_expand(
    execution::parallel_policy const& policy, G const& g,
    typename G::vertex_type const* verts, std::size_t f, Cond const& cond,
    frontier::sparse_frontier<typename G::vertex_type>& out,
    parallel::atomic_bitset* dedup, telemetry::op_probe const& probe) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  edge_balanced_result r;
  if (f == 0) {
    out.clear();
    return r;
  }

  // Pass 1: per-vertex work offsets (exclusive scan of out-degrees) into
  // pooled scratch.  Big frontiers scan on the pool; the offsets are
  // bit-identical to the serial scan either way.
  auto& offsets = balanced_offsets_scratch(f + 1, r.offsets_warm);
  auto const degree_of = [&g, verts](std::size_t i) {
    return static_cast<std::size_t>(g.get_out_degree(verts[i]));
  };
  if (f >= parallel_degree_scan_cutoff) {
    r.total_work = parallel::exclusive_scan_map(policy.pool(), f, degree_of,
                                                offsets.data());
  } else {
    std::size_t acc = 0;
    for (std::size_t i = 0; i < f; ++i) {
      offsets[i] = acc;
      acc += degree_of(i);
    }
    r.total_work = acc;
  }
  offsets[f] = r.total_work;
  if (r.total_work == 0) {
    out.clear();
    return r;
  }

  // Pass 2: edge-parallel expansion.  Each chunk of the edge-work range
  // locates its starting vertex once, then walks linearly, funneling hits
  // through the generation path's emit closure.
  auto const process_range = [&](std::size_t wlo, std::size_t whi,
                                 auto&& emit) {
    // First vertex whose work range intersects [wlo, whi).
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.begin() + f + 1, wlo) -
        offsets.begin()) - 1;
    std::size_t w = wlo;
    std::size_t relaxed = 0;
    while (w < whi && i < f) {
      V const v = verts[i];
      auto const edges = g.get_edges(v);
      E const base = *edges.begin();
      std::size_t const v_begin = offsets[i];
      std::size_t const v_end = offsets[i + 1];
      std::size_t const lo = w - v_begin;                  // intra-vertex
      std::size_t const hi = std::min(whi, v_end) - v_begin;
      for (std::size_t k = lo; k < hi; ++k) {
        E const e = static_cast<E>(base + static_cast<E>(k));
        V const n = g.get_dest_vertex(e);
        auto const weight = g.get_edge_weight(e);
        if (cond(v, n, e, weight)) {
          ++relaxed;
          emit(n);
        }
      }
      w = v_begin + hi;
      ++i;
    }
    probe.add_edges(whi - wlo, relaxed);
  };

  r.stats = frontier::generate(
      policy.frontier, policy.pool(), r.total_work,
      std::max<std::size_t>(policy.grain, policy.edge_grain_floor), out,
      process_range, dedup);
  return r;
}

}  // namespace detail

/// Edge-balanced push advance: sparse -> sparse, synchronous policies.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_push_edge_balanced(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;

  auto const& active = in.active();
  std::size_t const f = active.size();
  auto const probe =
      telemetry::make_probe("advance_push_edge_balanced", policy, f);
  frontier::sparse_frontier<V> out;
  if (f == 0)
    return out;

  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::atomic_bitset* const dedup = detail::dedup_filter(
        policy, static_cast<std::size_t>(g.get_num_vertices()));
    auto const r = detail::edge_balanced_expand(policy, g, active.data(), f,
                                                cond, out, dedup, probe);
    detail::flush_generate_stats(probe, policy.frontier, r.stats);
    // The pooled scratch axis covers both the lane buffers *and* the
    // offsets vector: a warm superstep reuses every allocation.
    probe.set_scratch_reused(r.stats.scratch_reused && r.offsets_warm);
    probe.set_load_balance("edge_balanced", false);
  } else {
    // Sequential reference: serial degree scan, then one linear walk.
    std::vector<std::size_t> offsets(f + 1, 0);
    for (std::size_t i = 0; i < f; ++i)
      offsets[i + 1] =
          offsets[i] + static_cast<std::size_t>(g.get_out_degree(active[i]));
    std::size_t const total_work = offsets[f];
    if (total_work == 0)
      return out;
    std::size_t relaxed = 0;
    for (std::size_t i = 0; i < f; ++i) {
      V const v = active[i];
      auto const edges = g.get_edges(v);
      E const base = *edges.begin();
      std::size_t const deg = offsets[i + 1] - offsets[i];
      for (std::size_t k = 0; k < deg; ++k) {
        E const e = static_cast<E>(base + static_cast<E>(k));
        V const n = g.get_dest_vertex(e);
        auto const weight = g.get_edge_weight(e);
        if (cond(v, n, e, weight)) {
          ++relaxed;
          out.active().push_back(n);
        }
      }
    }
    probe.add_edges(total_work, relaxed);
  }
  probe.set_items_out(out.size());
  return out;
}

/// Degree-class (TWC-style) push advance: triage the frontier by degree in
/// one pass, then expand each class with the decomposition that fits it —
/// small thread-mapped, medium edge-balanced, huge cooperatively.  The
/// output is the concatenation small ++ medium ++ huge (each class in
/// frontier order), deterministic for a fixed pool under
/// `frontier_gen::scan`; the sequential overload delegates to the reference
/// `advance_push(seq, ...)` semantics.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_push_degree_class(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;

  if constexpr (!std::decay_t<P>::is_parallel) {
    return advance_push(policy, g, in, cond);
  } else {
    auto const& active = in.active();
    std::size_t const f = active.size();
    auto const probe =
        telemetry::make_probe("advance_push_degree_class", policy, f);
    frontier::sparse_frontier<V> out;
    if (f == 0)
      return out;
    auto& pool = policy.pool();

    // Triage pass: every chunk classifies its slice of the frontier into
    // per-chunk lists (no locks — chunk `lo / step` owns its entry), the
    // coordinating thread concatenates in chunk order.  Zero-degree
    // vertices expand nothing and are dropped here.
    std::size_t const step =
        frontier::detail::chunk_step(pool, f, policy.grain);
    std::size_t const chunks = (f + step - 1) / step;
    auto& tri = detail::triage_scratch<V>(chunks);
    pool.run_blocked(
        f,
        [&](std::size_t lo, std::size_t hi) {
          auto& lane = tri[lo / step];
          for (std::size_t i = lo; i < hi; ++i) {
            V const v = active[i];
            std::size_t const d =
                static_cast<std::size_t>(g.get_out_degree(v));
            if (d == 0)
              continue;
            if (d <= detail::degree_class_small_cutoff)
              lane.small.push_back(v);
            else if (d >= detail::degree_class_huge_cutoff)
              lane.huge.push_back(v);
            else
              lane.medium.push_back(v);
          }
        },
        step);
    auto& buckets = detail::triage_buckets<V>();
    for (std::size_t c = 0; c < chunks; ++c) {
      auto const& lane = tri[c];
      buckets.small.insert(buckets.small.end(), lane.small.begin(),
                           lane.small.end());
      buckets.medium.insert(buckets.medium.end(), lane.medium.begin(),
                            lane.medium.end());
      buckets.huge.insert(buckets.huge.end(), lane.huge.begin(),
                          lane.huge.end());
    }

    // One claim bitmap across all three phases: `dedup_filter` clears it
    // once, the phases share the claims, so the output stays a set even
    // when a neighbor is reachable from different classes.
    parallel::atomic_bitset* const dedup = detail::dedup_filter(
        policy, static_cast<std::size_t>(g.get_num_vertices()));
    frontier::generate_stats combined;
    bool scratch_seen = false, scratch_reused = false;
    auto const note_scratch = [&](frontier::generate_stats const& s) {
      combined.emitted += s.emitted;
      combined.dedup_hits += s.dedup_hits;
      if (!scratch_seen) {
        scratch_seen = true;
        scratch_reused = s.scratch_reused;
      }
    };

    // Phase 1 — small: classic thread mapping; whole (small) vertices are
    // the unit of work.
    if (!buckets.small.empty()) {
      auto const& small = buckets.small;
      auto const body = [&](std::size_t lo, std::size_t hi, auto&& emit) {
        std::size_t inspected = 0, relaxed = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          V const v = small[i];
          for (auto const e : g.get_edges(v)) {
            V const n = g.get_dest_vertex(e);
            auto const w = g.get_edge_weight(e);
            ++inspected;
            if (cond(v, n, e, w)) {
              ++relaxed;
              emit(n);
            }
          }
        }
        probe.add_edges(inspected, relaxed);
      };
      note_scratch(frontier::generate(policy.frontier, pool, small.size(),
                                      policy.edge_grain, out, body, dedup));
    }

    // Phase 2 — medium: edge-balanced over the medium list only (this is
    // where scan + binary search still pays: degrees vary by two orders of
    // magnitude inside the bucket).
    if (!buckets.medium.empty()) {
      frontier::sparse_frontier<V> tmp;
      auto const r =
          detail::edge_balanced_expand(policy, g, buckets.medium.data(),
                                       buckets.medium.size(), cond, tmp,
                                       dedup, probe);
      note_scratch(r.stats);
      out.active().insert(out.active().end(), tmp.active().begin(),
                          tmp.active().end());
    }

    // Phase 3 — huge: each hub's edge range becomes its own blocked index
    // space, so every lane cooperates on one celebrity vertex instead of
    // one lane serializing it.
    for (V const v : buckets.huge) {
      auto const edges = g.get_edges(v);
      E const base = *edges.begin();
      std::size_t const deg = static_cast<std::size_t>(g.get_out_degree(v));
      auto const body = [&](std::size_t lo, std::size_t hi, auto&& emit) {
        std::size_t relaxed = 0;
        for (std::size_t k = lo; k < hi; ++k) {
          E const e = static_cast<E>(base + static_cast<E>(k));
          V const n = g.get_dest_vertex(e);
          auto const w = g.get_edge_weight(e);
          if (cond(v, n, e, w)) {
            ++relaxed;
            emit(n);
          }
        }
        probe.add_edges(hi - lo, relaxed);
      };
      frontier::sparse_frontier<V> tmp;
      note_scratch(frontier::generate(
          policy.frontier, pool, deg,
          std::max<std::size_t>(policy.grain, policy.edge_grain_floor), tmp,
          body, dedup));
      out.active().insert(out.active().end(), tmp.active().begin(),
                          tmp.active().end());
    }

    detail::flush_generate_stats(probe, policy.frontier, combined);
    probe.set_scratch_reused(scratch_seen && scratch_reused);
    probe.set_load_balance("degree_class", false);
    probe.set_items_out(out.size());
    return out;
  }
}

namespace detail {

/// The auto_select heuristic, from three inputs the superstep already has:
/// the frontier size, its estimated edge work (frontier size x the graph's
/// cached mean degree) and the graph's degree shape (max/mean ratio,
/// relative spread).  Deliberately simple and documented in
/// docs/ARCHITECTURE.md; BENCH_loadbalance.json holds it to >= 0.95x of
/// the best fixed strategy on the skewed sweep.
inline execution::load_balance auto_select_strategy(
    std::size_t frontier_size, graph::degree_stats_t const& s,
    std::size_t lanes, std::size_t edge_grain_floor) {
  using lb = execution::load_balance;
  if (frontier_size == 0)
    return lb::thread_mapped;
  // Hubs big enough for cooperative expansion exist: triage is cheap
  // insurance even on small frontiers (one of them could be in there).
  if (s.max_degree >= degree_class_huge_cutoff)
    return lb::degree_class;
  // Not enough estimated edge work to keep the lanes busy past the floor:
  // decomposition overhead cannot pay for itself.
  double const est_work =
      static_cast<double>(frontier_size) * std::max(s.mean_degree, 1.0);
  if (est_work <
      static_cast<double>(2 * lanes * std::max<std::size_t>(edge_grain_floor, 1)))
    return lb::thread_mapped;
  // Pronounced skew without giant hubs: triage still wins (the medium
  // bucket gets edge-balanced, the many small vertices skip the scan).
  if (s.mean_degree > 0.0 &&
      static_cast<double>(s.max_degree) >= 16.0 * s.mean_degree)
    return lb::degree_class;
  // Moderate, broad variance: pay the full scan once per superstep.
  if (s.mean_degree > 0.0 && s.stddev_degree >= s.mean_degree)
    return lb::edge_balanced;
  return lb::thread_mapped;
}

}  // namespace detail

/// The load-balance dispatcher: run the push advance with the
/// decomposition `policy.balance` names, resolving `auto_select` per
/// superstep from the frontier and the graph's cached degree summary.  The
/// resolved choice is recorded in telemetry (schema v7) on a zero-cost
/// `advance_balanced` op record whenever the caller engaged the axis
/// (balance != thread_mapped); the strategy's own op record carries the
/// work counters as usual.  Sequential policies take the reference path
/// unchanged.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_balanced(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  if constexpr (!std::decay_t<P>::is_parallel) {
    return advance_push(policy, g, in, cond);
  } else {
    using lb = execution::load_balance;
    lb strategy = policy.balance;
    bool const autod = strategy == lb::auto_select;
    if (autod) {
      auto const stats = graph::cached_out_degree_stats(g);
      strategy = detail::auto_select_strategy(
          in.size(), stats, policy.pool().size() + 1, policy.edge_grain_floor);
    }
    telemetry::op_probe probe;
    if (policy.balance != lb::thread_mapped) {
      probe = telemetry::make_probe("advance_balanced", policy, in.size());
      probe.set_load_balance(execution::to_string(strategy), autod);
    }
    frontier::sparse_frontier<V> out;
    switch (strategy) {
      case lb::edge_balanced:
        out = advance_push_edge_balanced(policy, g, in, cond);
        break;
      case lb::degree_class:
        out = advance_push_degree_class(policy, g, in, cond);
        break;
      case lb::thread_mapped:
      case lb::auto_select:  // resolved above; thread-mapped is the fallback
        out = advance_push(policy, g, in, cond);
        break;
    }
    probe.set_items_out(out.size());
    return out;
  }
}

}  // namespace essentials::operators
