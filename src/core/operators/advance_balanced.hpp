#pragma once

/// \file core/operators/advance_balanced.hpp
/// \brief Load-balanced advance — the optimization the paper's §IV-C points
/// at: "This is where the bulk of optimizations can be introduced, such as
/// utilizing data parallelism and load balancing."
///
/// The plain (thread-mapped) advance assigns *vertices* to lanes, so one
/// celebrity vertex with 10^5 out-edges serializes an entire lane while the
/// others idle — the classic power-law pathology.  The edge-balanced
/// variant assigns *edges* to lanes instead:
///   1. exclusive-scan the frontier's out-degrees -> per-vertex work
///      offsets and the total edge work W;
///   2. split [0, W) into equal chunks;
///   3. each lane binary-searches the offsets for its starting (vertex,
///      intra-vertex) position and walks edges linearly from there.
/// The result is identical to advance_push (same condition, same output
/// multiset); only the work decomposition changes.  bench_operators
/// measures the two against each other on skewed frontiers.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "parallel/for_each.hpp"

namespace essentials::operators {

/// Edge-balanced push advance: sparse -> sparse, synchronous policies.
template <typename P, typename G, typename Cond>
  requires execution::synchronous_policy<P> && advance_condition<Cond, G>
frontier::sparse_frontier<typename G::vertex_type> advance_push_edge_balanced(
    P policy, G const& g,
    frontier::sparse_frontier<typename G::vertex_type> const& in, Cond cond) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;

  auto const& active = in.active();
  std::size_t const f = active.size();
  auto const probe =
      telemetry::make_probe("advance_push_edge_balanced", policy, f);
  frontier::sparse_frontier<V> out;
  if (f == 0)
    return out;

  // Pass 1: per-vertex work offsets (exclusive scan of out-degrees).
  std::vector<std::size_t> offsets(f + 1, 0);
  for (std::size_t i = 0; i < f; ++i)
    offsets[i + 1] =
        offsets[i] + static_cast<std::size_t>(g.get_out_degree(active[i]));
  std::size_t const total_work = offsets[f];
  if (total_work == 0)
    return out;

  // Pass 2: edge-parallel expansion.  Each chunk of the edge-work range
  // locates its starting vertex once, then walks linearly.
  auto const process_range = [&](std::size_t wlo, std::size_t whi,
                                 std::vector<V>& local) {
    // First vertex whose work range intersects [wlo, whi).
    std::size_t i = static_cast<std::size_t>(
        std::upper_bound(offsets.begin(), offsets.end(), wlo) -
        offsets.begin()) - 1;
    std::size_t w = wlo;
    while (w < whi && i < f) {
      V const v = active[i];
      auto const edges = g.get_edges(v);
      E const base = *edges.begin();
      std::size_t const v_begin = offsets[i];
      std::size_t const v_end = offsets[i + 1];
      std::size_t const lo = w - v_begin;                  // intra-vertex
      std::size_t const hi = std::min(whi, v_end) - v_begin;
      for (std::size_t k = lo; k < hi; ++k) {
        E const e = static_cast<E>(base + static_cast<E>(k));
        V const n = g.get_dest_vertex(e);
        auto const weight = g.get_edge_weight(e);
        if (cond(v, n, e, weight))
          local.push_back(n);
      }
      w = v_begin + hi;
      ++i;
    }
  };

  if constexpr (std::decay_t<P>::is_parallel) {
    policy.pool().run_blocked(
        total_work,
        [&](std::size_t lo, std::size_t hi) {
          std::vector<V> local;
          process_range(lo, hi, local);
          out.append_bulk(local.data(), local.size());
          probe.add_edges(hi - lo, local.size());
        },
        std::max<std::size_t>(policy.grain, 64));
  } else {
    std::vector<V> local;
    process_range(0, total_work, local);
    out.append_bulk(local.data(), local.size());
    probe.add_edges(total_work, local.size());
  }
  probe.set_items_out(out.size());
  return out;
}

}  // namespace essentials::operators
