#pragma once

/// \file core/telemetry.hpp
/// \brief Per-enactment superstep telemetry — the observability layer the
/// TLAV survey (McCune et al.) and GraphX argue every vertex-centric system
/// needs: per-superstep frontier sizes, work counts (edges inspected /
/// relaxed), direction decisions (push vs pull), per-operator wall time and
/// thread-pool occupancy, exportable as JSON or CSV.
///
/// Design contract — zero overhead when you don't pay for it, twice over:
///
///  1. **Compile-time gate.**  `ESSENTIALS_TELEMETRY_ENABLED` (default 1;
///     set to 0 via the CMake option `ESSENTIALS_TELEMETRY=OFF`) guards
///     every recording path behind `if constexpr`.  With the flag off,
///     `current()` is a constant `nullptr`, probes are empty structs whose
///     methods are empty `constexpr` bodies, and the lane-local counters
///     that feed them become dead stores the optimizer deletes — the
///     operators compile to exactly the un-instrumented code.
///
///  2. **Run-time null sink.**  Even when compiled in, nothing records
///     unless a `scoped_recording` is active on the *calling* thread.  The
///     cost without one is a single thread-local pointer test per operator
///     invocation (not per edge): lane-local counters are plain register
///     increments and their flush is a no-op on an inert probe.
///
/// Threading model: `scoped_recording` installs a recorder in a
/// thread-local slot on the enacting thread; operators open an `op_probe`
/// on that thread and worker lanes flush lane-local counters into the
/// probe's atomics.  Synchronous operators retire the probe before
/// returning; `par_nosync` operators share the probe state with their
/// fire-and-forget tasks, so the *last* finisher (possibly a pool worker)
/// retires it — keep the `scoped_recording` alive across
/// `pool().wait_idle()` when recording asynchronous phases.
///
/// The JSON schema is documented in docs/API.md ("Telemetry").

#ifndef ESSENTIALS_TELEMETRY_ENABLED
#define ESSENTIALS_TELEMETRY_ENABLED 1
#endif

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "parallel/spinlock.hpp"

namespace essentials::telemetry {

/// True when recording support is compiled into this build.
inline constexpr bool compiled_in = (ESSENTIALS_TELEMETRY_ENABLED != 0);

/// Schema version stamped into every exported trace.  v2 adds the
/// frontier-generation counters (emits_scan / emits_lock / dedup_hits /
/// scratch_reused) to op records.  v3 adds job-scope tagging (job_id /
/// job_tag / graph_epoch) so engine-multiplexed traces can be attributed to
/// the job that produced them.  v4 adds warm-start attribution (warm_start
/// / delta_edges / supersteps_saved) for incremental delta-recompute jobs.
/// v5 adds batch attribution (batch_id / batch_size / lane) for jobs fused
/// into one lane-packed enactment by the engine's request batcher.
/// v6 adds residual-engine attribution (standing / residual_injections /
/// residual_waves / residual_final) for standing queries re-converged
/// in-place by the delta-accumulative priority engine (src/residual/).
/// v7 adds the load-balance decision (load_balance / lb_auto) to op
/// records: which advance work-decomposition strategy actually ran, and
/// whether `load_balance::auto_select` chose it from the frontier shape —
/// so BENCH artifacts can attribute wins to the decomposition.
inline constexpr int schema_version = 7;

// ---------------------------------------------------------------------------
// Trace data model
// ---------------------------------------------------------------------------

/// One operator invocation (advance / filter / uniquify / ...).
///
/// Work-count semantics, chosen so counts are comparable *across traversal
/// directions*: `edges_inspected` counts edges whose user condition was
/// evaluated (push: every edge out of the frontier; pull: every in-edge
/// whose source is active, up to early exit), `edges_relaxed` counts edges
/// whose condition returned true.  With a pure condition and no early exit,
/// push and pull inspect and relax the same edge set.
struct op_record {
  std::string name;                 ///< e.g. "advance_push.par"
  std::size_t items_in = 0;         ///< input frontier / index-space size
  std::size_t items_out = 0;        ///< output size (0 for async launches)
  std::size_t edges_inspected = 0;  ///< condition evaluations
  std::size_t edges_relaxed = 0;    ///< condition returned true
  std::size_t emits_scan = 0;       ///< elements published lock-free (scan path)
  std::size_t emits_lock = 0;       ///< elements published under a lock (bulk/listing3)
  std::size_t dedup_hits = 0;       ///< emissions suppressed by the dedup bitmap
  bool scratch_reused = false;      ///< lane scratch arrived with warm capacity
  std::string load_balance;         ///< decomposition strategy that ran
                                    ///< (empty == not a load-balanced op;
                                    ///< elided from the JSON export)
  bool lb_auto = false;             ///< strategy chosen by auto_select
  double millis = 0.0;              ///< wall time, launch -> retire
  std::size_t pool_lanes = 0;       ///< lanes available (0 == sequential)
  std::size_t pool_queued = 0;      ///< pool tasks pending at launch
  std::size_t pool_busy = 0;        ///< pool workers executing at launch
  bool async = false;               ///< par_nosync launch (items_out n/a)
};

/// One superstep of a bulk-synchronous enactment.
struct superstep_record {
  std::size_t index = 0;
  std::size_t frontier_in = 0;
  std::size_t frontier_out = 0;
  direction_t direction = direction_t::push;
  bool switched_direction = false;  ///< direction changed vs previous step
  double frontier_density = 0.0;    ///< |F| / |V| when the algorithm reports it
  double metric = 0.0;              ///< algorithm metric (e.g. PageRank L1 delta)
  double millis = 0.0;
  std::vector<op_record> ops;

  std::size_t edges_inspected() const {
    std::size_t total = 0;
    for (auto const& op : ops)
      total += op.edges_inspected;
    return total;
  }
  std::size_t edges_relaxed() const {
    std::size_t total = 0;
    for (auto const& op : ops)
      total += op.edges_relaxed;
    return total;
  }
  std::size_t emits_scan() const {
    std::size_t total = 0;
    for (auto const& op : ops)
      total += op.emits_scan;
    return total;
  }
  std::size_t emits_lock() const {
    std::size_t total = 0;
    for (auto const& op : ops)
      total += op.emits_lock;
    return total;
  }
  std::size_t dedup_hits() const {
    std::size_t total = 0;
    for (auto const& op : ops)
      total += op.dedup_hits;
    return total;
  }
};

/// A full enactment trace: the supersteps of one algorithm run.
///
/// Job-scope tagging (schema v3): when an enactment runs under the engine
/// scheduler, the scheduler stamps the trace with the job's id, a
/// human-readable tag ("sssp(graph=web, src=42)") and the graph epoch the
/// job ran against — so mixed traces from a multi-tenant engine can be
/// grouped per job, per workload class, or per epoch.  Zero/empty means
/// "not job-scoped" (standalone enactments) and the fields are elided from
/// the JSON export.
struct trace {
  std::string algorithm;
  std::uint64_t job_id = 0;    ///< engine job id (0 == standalone run)
  std::string job_tag;         ///< engine job tag (empty == standalone)
  std::uint64_t graph_epoch = 0;  ///< registry epoch the job ran against
  // Warm-start attribution (schema v4): filled by the engine scheduler when
  // the job's enactment was seeded incrementally from a prior epoch's
  // converged result (algorithms/incremental.hpp).
  bool warm_start = false;            ///< enactment seeded from a warm entry
  std::uint64_t delta_edges = 0;      ///< delta records that seeded the frontier
  std::uint64_t supersteps_saved = 0;  ///< prior cold supersteps minus warm ones
  // Batch attribution (schema v5): filled by the engine scheduler when this
  // job was fused with compatible concurrent queries into one lane-packed
  // enactment (engine/batcher.hpp).  batch_size == 0 means "not batched";
  // the supersteps of the shared enactment are recorded on one member of
  // the wave (the first trace-requesting lane), every member carries the
  // attribution fields.
  std::uint64_t batch_id = 0;   ///< id of the fused enactment wave
  std::uint32_t batch_size = 0; ///< members fused into the wave (0 == unbatched)
  std::uint32_t lane = 0;       ///< this job's lane within the wave
  // Residual attribution (schema v6): filled by a standing query when an
  // epoch publish was absorbed by in-place re-convergence (src/residual/)
  // instead of a scheduled job.  Each priority wave is recorded as one
  // superstep (frontier_in = wave size, metric = outstanding residual
  // mass); `standing == false` elides the whole group.
  bool standing = false;              ///< trace of a standing-query reconverge
  std::uint64_t residual_injections = 0;  ///< shares injected for this epoch
  std::uint64_t residual_waves = 0;   ///< priority waves to re-convergence
  double residual_final = 0.0;        ///< residual mass when the run stopped
  std::vector<superstep_record> supersteps;

  std::size_t num_supersteps() const { return supersteps.size(); }
  std::size_t total_edges_inspected() const {
    std::size_t total = 0;
    for (auto const& s : supersteps)
      total += s.edges_inspected();
    return total;
  }
  std::size_t total_edges_relaxed() const {
    std::size_t total = 0;
    for (auto const& s : supersteps)
      total += s.edges_relaxed();
    return total;
  }
  std::size_t total_emits_scan() const {
    std::size_t total = 0;
    for (auto const& s : supersteps)
      total += s.emits_scan();
    return total;
  }
  std::size_t total_emits_lock() const {
    std::size_t total = 0;
    for (auto const& s : supersteps)
      total += s.emits_lock();
    return total;
  }
  std::size_t total_dedup_hits() const {
    std::size_t total = 0;
    for (auto const& s : supersteps)
      total += s.dedup_hits();
    return total;
  }
  double total_millis() const {
    double total = 0.0;
    for (auto const& s : supersteps)
      total += s.millis;
    return total;
  }
  std::size_t direction_switches() const {
    std::size_t total = 0;
    for (auto const& s : supersteps)
      total += s.switched_direction ? 1 : 0;
    return total;
  }
  void clear() { supersteps.clear(); }
};

// ---------------------------------------------------------------------------
// Recorder
// ---------------------------------------------------------------------------

/// Accumulates superstep records into a sink trace.  Superstep boundaries
/// are driven from the enacting thread (`bsp_loop` or an algorithm's manual
/// loop); operator records may arrive from any thread (`par_nosync`
/// retirement), so every mutation is guarded by a spinlock — contention is
/// per operator call, never per edge.
class recorder {
 public:
  recorder() = default;

  void attach(trace* sink) { sink_ = sink; }
  bool active() const { return sink_ != nullptr; }

  /// Open superstep `index = supersteps.size()` with the given input
  /// frontier size and (tentative) direction.
  void begin_superstep(std::size_t frontier_in,
                       direction_t direction = direction_t::push) {
    if (!sink_)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    superstep_record s;
    s.index = sink_->supersteps.size();
    s.frontier_in = frontier_in;
    s.direction = direction;
    sink_->supersteps.push_back(std::move(s));
    open_ = true;
    step_start_ = std::chrono::steady_clock::now();
  }

  /// Record the direction decision of the open superstep (called by
  /// direction-optimizing algorithms after their heuristic fires).
  void set_direction(direction_t direction, bool switched,
                     double frontier_density = 0.0) {
    if (!sink_)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    auto& s = current_locked();
    s.direction = direction;
    s.switched_direction = switched;
    s.frontier_density = frontier_density;
  }

  /// Record an algorithm-specific convergence metric (e.g. PageRank delta).
  void set_metric(double metric) {
    if (!sink_)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    current_locked().metric = metric;
  }

  /// Close the open superstep with the output frontier size.
  void end_superstep(std::size_t frontier_out) {
    if (!sink_)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    auto& s = current_locked();
    s.frontier_out = frontier_out;
    s.millis = std::chrono::duration<double, std::milli>(
                   std::chrono::steady_clock::now() - step_start_)
                   .count();
    open_ = false;
  }

  /// Append an operator record to the open superstep.  Ops arriving outside
  /// any superstep (bare operator calls in tests, or async retirements after
  /// `end_superstep`) land in the most recent superstep, opening an implicit
  /// step 0 if none exists — so `total_edges_*` is always complete.
  void add_op(op_record op) {
    if (!sink_)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    if (sink_->supersteps.empty()) {
      superstep_record s;
      s.index = 0;
      s.frontier_in = op.items_in;
      sink_->supersteps.push_back(std::move(s));
    }
    sink_->supersteps.back().ops.push_back(std::move(op));
  }

  /// Close any superstep left open (scope teardown safety net).
  void finish() {
    if (!sink_)
      return;
    std::lock_guard<parallel::spinlock> guard(lock_);
    open_ = false;
  }

 private:
  // Pre: lock_ held and sink_ != nullptr.
  superstep_record& current_locked() {
    if (sink_->supersteps.empty() || !open_) {
      superstep_record s;
      s.index = sink_->supersteps.size();
      sink_->supersteps.push_back(std::move(s));
      open_ = true;
      step_start_ = std::chrono::steady_clock::now();
    }
    return sink_->supersteps.back();
  }

  trace* sink_ = nullptr;
  bool open_ = false;
  std::chrono::steady_clock::time_point step_start_{};
  parallel::spinlock lock_;
};

namespace detail {
/// Thread-local recorder slot.  Function-local so the header stays ODR-safe.
inline recorder*& current_slot() {
  thread_local recorder* slot = nullptr;
  return slot;
}
}  // namespace detail

/// The recorder active on this thread, or nullptr.  A compile-time constant
/// nullptr when telemetry is compiled out, so `if (telemetry::current())`
/// folds away entirely.
inline recorder* current() {
  if constexpr (!compiled_in)
    return nullptr;
  else
    return detail::current_slot();
}

/// RAII recording scope: installs a recorder targeting `sink` on the
/// current thread for the duration of the scope.  Nested scopes stack (the
/// inner trace wins; the outer resumes on exit).
class scoped_recording {
 public:
  scoped_recording(trace& sink, std::string algorithm) {
    if constexpr (compiled_in) {
      sink.algorithm = std::move(algorithm);
      rec_.attach(&sink);
      prev_ = detail::current_slot();
      detail::current_slot() = &rec_;
    } else {
      (void)algorithm;
    }
  }
  ~scoped_recording() {
    if constexpr (compiled_in) {
      rec_.finish();
      detail::current_slot() = prev_;
    }
  }
  scoped_recording(scoped_recording const&) = delete;
  scoped_recording& operator=(scoped_recording const&) = delete;

  recorder& get() { return rec_; }

 private:
  recorder rec_;
  recorder* prev_ = nullptr;
};

// ---------------------------------------------------------------------------
// Operator probe
// ---------------------------------------------------------------------------

/// Shared retirement state of one instrumented operator call.  Lane-local
/// counters flush into the atomics; the destructor of the *last* owner
/// stamps wall time and hands the finished record to the recorder.
struct probe_state {
  recorder* rec = nullptr;
  op_record record;
  std::chrono::steady_clock::time_point start{};
  std::atomic<std::size_t> inspected{0};
  std::atomic<std::size_t> relaxed{0};
  std::atomic<std::size_t> emits_scan{0};
  std::atomic<std::size_t> emits_lock{0};
  std::atomic<std::size_t> dedup_hits{0};

  ~probe_state() {
    record.edges_inspected = inspected.load(std::memory_order_relaxed);
    record.edges_relaxed = relaxed.load(std::memory_order_relaxed);
    record.emits_scan = emits_scan.load(std::memory_order_relaxed);
    record.emits_lock = emits_lock.load(std::memory_order_relaxed);
    record.dedup_hits = dedup_hits.load(std::memory_order_relaxed);
    record.millis = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    if (rec)
      rec->add_op(std::move(record));
  }
};

/// Flush lane-local edge counters into a shared probe state (used by
/// `par_nosync` task lambdas, which capture the state by shared_ptr).
inline void flush_edges(std::shared_ptr<probe_state> const& s,
                        std::size_t inspected, std::size_t relaxed) {
  if constexpr (compiled_in) {
    if (s) {
      if (inspected)
        s->inspected.fetch_add(inspected, std::memory_order_relaxed);
      if (relaxed)
        s->relaxed.fetch_add(relaxed, std::memory_order_relaxed);
    }
  } else {
    (void)s;
    (void)inspected;
    (void)relaxed;
  }
}

/// Flush frontier-generation counters into a shared probe state: how many
/// elements were published lock-free (scan compaction) vs under a lock
/// (bulk append / listing3 per-element), and how many emissions the dedup
/// bitmap suppressed.
inline void flush_emits(std::shared_ptr<probe_state> const& s,
                        std::size_t scan, std::size_t lock,
                        std::size_t dedup = 0) {
  if constexpr (compiled_in) {
    if (s) {
      if (scan)
        s->emits_scan.fetch_add(scan, std::memory_order_relaxed);
      if (lock)
        s->emits_lock.fetch_add(lock, std::memory_order_relaxed);
      if (dedup)
        s->dedup_hits.fetch_add(dedup, std::memory_order_relaxed);
    }
  } else {
    (void)s;
    (void)scan;
    (void)lock;
    (void)dedup;
  }
}

/// Per-operator-call probe.  Inert (null state, all methods no-ops) when
/// telemetry is compiled out or no recording scope is active — the checks
/// are one pointer test per *operator call*, never per edge.
class op_probe {
 public:
  op_probe() = default;

  op_probe(char const* name, std::size_t items_in, std::size_t pool_lanes,
           std::size_t pool_queued, std::size_t pool_busy, bool async) {
    if constexpr (compiled_in) {
      if (recorder* const r = current(); r != nullptr && r->active()) {
        s_ = std::make_shared<probe_state>();
        s_->rec = r;
        s_->record.name = name;
        s_->record.items_in = items_in;
        s_->record.pool_lanes = pool_lanes;
        s_->record.pool_queued = pool_queued;
        s_->record.pool_busy = pool_busy;
        s_->record.async = async;
        s_->start = std::chrono::steady_clock::now();
      }
    } else {
      (void)name;
      (void)items_in;
      (void)pool_lanes;
      (void)pool_queued;
      (void)pool_busy;
      (void)async;
    }
  }

  /// True when this call is being recorded.  Use to gate expensive
  /// summaries (e.g. a dense frontier popcount for items_out).
  explicit operator bool() const {
    if constexpr (compiled_in)
      return s_ != nullptr;
    else
      return false;
  }

  /// Flush lane-local counters (relaxed atomic adds; no-op when inert).
  void add_edges(std::size_t inspected, std::size_t relaxed) const {
    flush_edges(s_, inspected, relaxed);
  }

  /// Flush frontier-generation counters (see `flush_emits`).
  void add_emits(std::size_t scan, std::size_t lock,
                 std::size_t dedup = 0) const {
    flush_emits(s_, scan, lock, dedup);
  }

  /// Record the load-balance decision (schema v7): which work-decomposition
  /// strategy actually ran, and whether auto_select picked it — enacting
  /// thread only.
  void set_load_balance(char const* strategy, bool auto_selected) const {
    if constexpr (compiled_in) {
      if (s_) {
        s_->record.load_balance = strategy;
        s_->record.lb_auto = auto_selected;
      }
    } else {
      (void)strategy;
      (void)auto_selected;
    }
  }

  /// Record whether the scan path's lane scratch arrived warm (capacity
  /// reused from a previous superstep) — enacting thread only.
  void set_scratch_reused(bool reused) const {
    if constexpr (compiled_in) {
      if (s_)
        s_->record.scratch_reused = reused;
    } else {
      (void)reused;
    }
  }

  void set_items_out(std::size_t n) const {
    if constexpr (compiled_in) {
      if (s_)
        s_->record.items_out = n;
    } else {
      (void)n;
    }
  }

  /// Share the retirement state with fire-and-forget tasks (par_nosync):
  /// each task captures the returned pointer by value and the last owner to
  /// release it retires the record.  Null when inert.
  std::shared_ptr<probe_state> share() const { return s_; }

 private:
  std::shared_ptr<probe_state> s_;
};

/// Frontier size for a telemetry probe without paying a potentially
/// expensive size() (dense-frontier popcount) when nothing is recording —
/// returns 0 in that case.
template <typename F>
std::size_t probe_items(F const& f) {
  if constexpr (compiled_in) {
    if (recorder* const r = current(); r != nullptr && r->active())
      return f.size();
  }
  return 0;
}

/// Build a probe for an operator running under `policy`, sampling
/// thread-pool occupancy for parallel policies.  Duck-typed on the policy's
/// `is_parallel` so this header does not depend on core/execution.hpp.
template <typename P>
op_probe make_probe(char const* name, P const& policy, std::size_t items_in,
                    bool async = false) {
  if constexpr (compiled_in) {
    if (recorder* const r = current(); r == nullptr || !r->active())
      return op_probe{};
    if constexpr (std::decay_t<P>::is_parallel) {
      auto& pool = policy.pool();
      auto const stats = pool.stats();
      return op_probe(name, items_in, pool.size() + 1, stats.queued,
                      stats.busy, async);
    } else {
      return op_probe(name, items_in, 0, 0, 0, async);
    }
  } else {
    (void)name;
    (void)policy;
    (void)items_in;
    (void)async;
    return op_probe{};
  }
}

// ---------------------------------------------------------------------------
// Export: JSON and CSV
// ---------------------------------------------------------------------------

inline char const* to_string(direction_t d) {
  switch (d) {
    case direction_t::push:
      return "push";
    case direction_t::pull:
      return "pull";
    case direction_t::optimized:
      return "optimized";
  }
  return "unknown";
}

namespace detail {

inline void json_escape(std::ostream& os, std::string const& s) {
  for (char const c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20)
          os << ' ';
        else
          os << c;
    }
  }
}

inline void write_op_json(std::ostream& os, op_record const& op) {
  os << "{\"name\":\"";
  json_escape(os, op.name);
  os << "\",\"items_in\":" << op.items_in << ",\"items_out\":" << op.items_out
     << ",\"edges_inspected\":" << op.edges_inspected
     << ",\"edges_relaxed\":" << op.edges_relaxed
     << ",\"emits_scan\":" << op.emits_scan
     << ",\"emits_lock\":" << op.emits_lock
     << ",\"dedup_hits\":" << op.dedup_hits
     << ",\"scratch_reused\":" << (op.scratch_reused ? "true" : "false");
  if (!op.load_balance.empty()) {
    os << ",\"load_balance\":\"";
    json_escape(os, op.load_balance);
    os << "\",\"lb_auto\":" << (op.lb_auto ? "true" : "false");
  }
  os << ",\"millis\":" << op.millis << ",\"pool_lanes\":" << op.pool_lanes
     << ",\"pool_queued\":" << op.pool_queued
     << ",\"pool_busy\":" << op.pool_busy
     << ",\"async\":" << (op.async ? "true" : "false") << "}";
}

inline void write_superstep_json(std::ostream& os, superstep_record const& s) {
  os << "{\"superstep\":" << s.index << ",\"frontier_in\":" << s.frontier_in
     << ",\"frontier_out\":" << s.frontier_out << ",\"direction\":\""
     << to_string(s.direction) << "\",\"switched_direction\":"
     << (s.switched_direction ? "true" : "false")
     << ",\"frontier_density\":" << s.frontier_density
     << ",\"metric\":" << s.metric << ",\"millis\":" << s.millis
     << ",\"edges_inspected\":" << s.edges_inspected()
     << ",\"edges_relaxed\":" << s.edges_relaxed()
     << ",\"emits_scan\":" << s.emits_scan()
     << ",\"emits_lock\":" << s.emits_lock()
     << ",\"dedup_hits\":" << s.dedup_hits() << ",\"ops\":[";
  for (std::size_t i = 0; i < s.ops.size(); ++i) {
    if (i)
      os << ",";
    write_op_json(os, s.ops[i]);
  }
  os << "]}";
}

}  // namespace detail

/// Serialize one trace as a self-describing JSON object (schema documented
/// in docs/API.md).
inline void write_json(trace const& t, std::ostream& os) {
  os << "{\"telemetry_version\":" << schema_version << ",\"algorithm\":\"";
  detail::json_escape(os, t.algorithm);
  os << "\"";
  if (t.job_id != 0 || !t.job_tag.empty()) {
    os << ",\"job_id\":" << t.job_id << ",\"job_tag\":\"";
    detail::json_escape(os, t.job_tag);
    os << "\",\"graph_epoch\":" << t.graph_epoch;
  }
  if (t.warm_start || t.delta_edges != 0 || t.supersteps_saved != 0) {
    os << ",\"warm_start\":" << (t.warm_start ? "true" : "false")
       << ",\"delta_edges\":" << t.delta_edges
       << ",\"supersteps_saved\":" << t.supersteps_saved;
  }
  if (t.batch_size != 0) {
    os << ",\"batch_id\":" << t.batch_id
       << ",\"batch_size\":" << t.batch_size << ",\"lane\":" << t.lane;
  }
  if (t.standing) {
    os << ",\"standing\":true"
       << ",\"residual_injections\":" << t.residual_injections
       << ",\"residual_waves\":" << t.residual_waves
       << ",\"residual_final\":" << t.residual_final;
  }
  os << ",\"supersteps\":[";
  for (std::size_t i = 0; i < t.supersteps.size(); ++i) {
    if (i)
      os << ",";
    detail::write_superstep_json(os, t.supersteps[i]);
  }
  os << "],\"totals\":{\"supersteps\":" << t.num_supersteps()
     << ",\"edges_inspected\":" << t.total_edges_inspected()
     << ",\"edges_relaxed\":" << t.total_edges_relaxed()
     << ",\"emits_scan\":" << t.total_emits_scan()
     << ",\"emits_lock\":" << t.total_emits_lock()
     << ",\"dedup_hits\":" << t.total_dedup_hits()
     << ",\"direction_switches\":" << t.direction_switches()
     << ",\"millis\":" << t.total_millis() << "}}";
}

/// Serialize several traces as `{"traces": [...]}` (e.g. one per benchmark
/// workload).
inline void write_json(std::vector<trace> const& traces, std::ostream& os) {
  os << "{\"telemetry_version\":" << schema_version << ",\"traces\":[";
  for (std::size_t i = 0; i < traces.size(); ++i) {
    if (i)
      os << ",";
    write_json(traces[i], os);
  }
  os << "]}";
}

/// Write a trace (or traces) to a file; returns false if the file could not
/// be opened.
template <typename TraceT>
bool write_json(TraceT const& t, std::string const& path) {
  std::ofstream os(path);
  if (!os)
    return false;
  write_json(t, os);
  os << "\n";
  return static_cast<bool>(os);
}

/// One CSV row per superstep (header included) — the spreadsheet-friendly
/// flattening of the JSON trace.
inline void write_csv(trace const& t, std::ostream& os) {
  os << "algorithm,superstep,direction,switched,frontier_in,frontier_out,"
        "frontier_density,edges_inspected,edges_relaxed,emits_scan,"
        "emits_lock,dedup_hits,metric,millis,ops\n";
  for (auto const& s : t.supersteps) {
    os << t.algorithm << "," << s.index << "," << to_string(s.direction) << ","
       << (s.switched_direction ? 1 : 0) << "," << s.frontier_in << ","
       << s.frontier_out << "," << s.frontier_density << ","
       << s.edges_inspected() << "," << s.edges_relaxed() << ","
       << s.emits_scan() << "," << s.emits_lock() << "," << s.dedup_hits()
       << "," << s.metric << "," << s.millis << "," << s.ops.size() << "\n";
  }
}

inline bool write_csv(trace const& t, std::string const& path) {
  std::ofstream os(path);
  if (!os)
    return false;
  write_csv(t, os);
  return static_cast<bool>(os);
}

}  // namespace essentials::telemetry
