#pragma once

/// \file core/types.hpp
/// \brief Fundamental scalar types, limits and small helpers shared by every
/// module of the essentials framework.
///
/// The paper's abstraction is agnostic to the width of vertex/edge
/// identifiers; we follow the companion artifact (gunrock/essentials) and
/// default to 32-bit vertex ids, 32-bit edge ids and single-precision
/// weights, which fit the graph scales a single node can hold.  Everything
/// that matters is templated on these types, so wider ids are a typedef away.

#include <cstdint>
#include <cstddef>
#include <limits>
#include <stdexcept>
#include <string>

namespace essentials {

/// Default vertex identifier. Signed so that -1 can act as an "invalid"
/// sentinel in textbook-style code, matching the paper's listings which use
/// plain `int` vertices.
using vertex_t = std::int32_t;

/// Default edge identifier (an index into the CSR column/value arrays).
using edge_t = std::int32_t;

/// Default edge-weight type (paper Listing 1 stores `float` values).
using weight_t = float;

/// Canonical "no vertex" sentinel.
template <typename V = vertex_t>
inline constexpr V invalid_vertex = static_cast<V>(-1);

/// Canonical "no edge" sentinel.
template <typename E = edge_t>
inline constexpr E invalid_edge = static_cast<E>(-1);

/// Canonical "unreached" distance, mirroring Listing 4's
/// `std::numeric_limits<float>::max()` initialization.
template <typename W = weight_t>
inline constexpr W infinity_v = std::numeric_limits<W>::max();

/// Error type thrown by loaders/builders on malformed input.  Kept distinct
/// from std::runtime_error so callers can discriminate framework errors.
class graph_error : public std::runtime_error {
 public:
  explicit graph_error(std::string const& what) : std::runtime_error(what) {}
};

/// Lightweight contract check used across the library.  Unlike assert() it
/// fires in release builds too: graph algorithms silently producing wrong
/// results are far worse than an early throw.
inline void expects(bool condition, char const* message) {
  if (!condition)
    throw graph_error(message);
}

/// Frontier/operator dichotomy: does an active set hold vertices or edges?
/// (Paper §III-C: "the frontier type, expressed as either a set of active
/// vertices or a set of active edges".)
enum class frontier_kind : std::uint8_t {
  vertex_frontier,
  edge_frontier,
};

/// Traversal direction selector (paper §III-C, push vs. pull).
enum class direction_t : std::uint8_t {
  push,      ///< expand out-edges of the input frontier (CSR)
  pull,      ///< gather along in-edges of candidate vertices (CSC)
  optimized  ///< direction-optimizing: pick push/pull per iteration
};

}  // namespace essentials
