#pragma once

/// \file algorithms/msbfs.hpp
/// \brief Bit-parallel multi-source traversals (MS-BFS and lane-packed
/// SSSP): run up to 64 searches at once, one bit lane per source.  A
/// vertex's frontier membership across all traversals is a single u64, so
/// one pass over an edge advances every search that wants it — the
/// technique behind fast all-pairs-ish analytics (betweenness sampling,
/// closeness, diameter) and behind the engine's request batcher
/// (engine/batcher.hpp), which fuses concurrent same-graph queries into
/// these lanes.
///
/// The frontier here is a *vector of bitmasks* — yet another underlying
/// representation behind the same conceptual interface, which is the
/// paper's §III-B point taken to its logical extreme.
///
/// Lane masking: both traversals accept a per-superstep `lane_mask`
/// callable returning the set of lanes still allowed to run.  A lane
/// dropped from the mask simply stops propagating — it never aborts the
/// other lanes.  This is how fused engine jobs honor *per-member* deadlines
/// and cancel tokens: the member's `job_context::should_stop()` clears its
/// bit, the batch keeps converging for everyone else.
///
/// Telemetry: each level is recorded as one superstep on the active
/// recorder (core/telemetry.hpp) with an "msbfs.expand" / "mssssp.relax"
/// op record carrying per-lane-applied edge counts — so fused enactments
/// are visible in job traces (schema v5 tags the batch attribution).

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// Default lane mask: every lane runs to convergence.
struct all_lanes {
  std::uint64_t operator()(std::size_t /*superstep*/) const {
    return ~std::uint64_t{0};
  }
};

template <typename V = vertex_t>
struct msbfs_result {
  /// depth[s][v]: hops from sources[s] to v, -1 if unreached.
  std::vector<std::vector<V>> depth;
  std::size_t iterations = 0;
  /// lane_levels[s]: the last level at which lane s discovered any vertex
  /// (0 when the source reached nothing).  Unlike `iterations` — which is
  /// the batch-wide superstep count — this is a *per-lane* convergence
  /// depth, identical whether the lane ran alone or fused with 63 others.
  std::vector<V> lane_levels;
};

/// Multi-source BFS from up to 64 sources.  Push-style level-synchronous:
/// each superstep, every vertex with new search bits propagates them to
/// its out-neighbors with atomic fetch_or.  `lane_mask(superstep)` gates
/// which lanes may still expand (see file comment); masked-out lanes keep
/// the depths they had discovered so far.
template <typename P, typename G, typename MaskFn = all_lanes>
  requires execution::synchronous_policy<P>
msbfs_result<typename G::vertex_type> multi_source_bfs(
    P policy, G const& g,
    std::vector<typename G::vertex_type> const& sources,
    MaskFn lane_mask = {}) {
  using V = typename G::vertex_type;
  expects(!sources.empty() && sources.size() <= 64,
          "multi_source_bfs: need 1..64 sources");
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::size_t const s = sources.size();
  std::uint64_t const full_mask =
      s == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << s) - 1);

  msbfs_result<V> result;
  result.depth.assign(s, std::vector<V>(n, V{-1}));
  result.lane_levels.assign(s, V{0});

  // seen[v]: searches that have reached v; frontier_bits[v]: searches that
  // reached v in the previous superstep (and must expand from it now).
  std::vector<std::uint64_t> seen(n, 0), frontier_bits(n, 0), next_bits(n, 0);
  std::size_t active = 0;  // vertices with any frontier bit set
  for (std::size_t i = 0; i < s; ++i) {
    V const src = sources[i];
    expects(src >= 0 && src < g.get_num_vertices(),
            "multi_source_bfs: source out of range");
    if (frontier_bits[static_cast<std::size_t>(src)] == 0)
      ++active;
    seen[static_cast<std::size_t>(src)] |= std::uint64_t{1} << i;
    frontier_bits[static_cast<std::size_t>(src)] |= std::uint64_t{1} << i;
    result.depth[i][static_cast<std::size_t>(src)] = 0;
  }

  std::uint64_t* const seen_p = seen.data();
  std::uint64_t* const cur_p = frontier_bits.data();
  std::uint64_t* const nxt_p = next_bits.data();

  telemetry::recorder* const rec = telemetry::current();

  V level = 0;
  bool any = true;
  while (any) {
    // Per-superstep lane gate: a lane dropped here stops propagating (its
    // bits are masked at read time in the expand), everyone else proceeds.
    std::uint64_t const mask = full_mask & lane_mask(result.iterations);
    if (mask == 0)
      break;

    if (rec)
      rec->begin_superstep(active, direction_t::push);
    auto const probe =
        telemetry::make_probe("msbfs.expand", policy, active);

    // Expand: push each vertex's new (live-lane) bits to its neighbors.
    operators::compute_vertices(policy, g, [&g, cur_p, nxt_p, mask,
                                            &probe](V v) {
      std::uint64_t const bits = cur_p[v] & mask;
      if (bits == 0)
        return;
      std::size_t inspected = 0, relaxed = 0;
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        ++inspected;
        // fetch_or only for genuinely new bits cuts contention.
        std::atomic_ref<std::uint64_t> ref(nxt_p[static_cast<std::size_t>(nb)]);
        if ((ref.load(std::memory_order_relaxed) & bits) != bits) {
          ref.fetch_or(bits, std::memory_order_relaxed);
          ++relaxed;
        }
      }
      probe.add_edges(inspected, relaxed);
    });

    // Settle: new = next & ~seen becomes the next frontier; record depths.
    ++level;
    std::uint64_t any_bits = 0;
    std::size_t next_active = 0;
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t const fresh = nxt_p[v] & ~seen_p[v];
      seen_p[v] |= fresh;
      cur_p[v] = fresh;
      nxt_p[v] = 0;
      any_bits |= fresh;
      if (fresh != 0) {
        ++next_active;
        std::uint64_t bits = fresh;
        while (bits != 0) {
          unsigned const lane = static_cast<unsigned>(__builtin_ctzll(bits));
          bits &= bits - 1;
          result.depth[lane][v] = level;
          result.lane_levels[lane] = level;
        }
      }
    }
    if (rec)
      rec->end_superstep(next_active);
    any = any_bits != 0;
    active = next_active;
    ++result.iterations;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Lane-packed multi-source SSSP
// ---------------------------------------------------------------------------

template <typename W = weight_t, typename V = vertex_t>
struct mssssp_result {
  /// dist[s][v]: shortest distance from sources[s] to v (infinity_v<W> if
  /// unreachable).  The converged values are the deterministic shortest-path
  /// fixed point — identical whether the lane ran alone or fused.
  std::vector<std::vector<W>> dist;
  std::size_t iterations = 0;
};

/// Multi-source SSSP from up to 64 sources: one label-correcting traversal
/// shared by every lane.  The frontier is the same vector-of-bitmasks as
/// MS-BFS — bit l of `frontier[v]` means "lane l improved dist[l][v] last
/// superstep and must re-relax v's out-edges" — so one pass over an edge
/// relaxes every search that wants it, with per-lane distance arrays
/// (atomic-min lattice, exactly Listing 4's relaxation per lane).  This is
/// the `execution::batch::fused` enactment behind batched engine SSSP.
/// Weights must be non-negative (same contract as `sssp`).
template <typename P, typename G, typename MaskFn = all_lanes>
  requires execution::synchronous_policy<P>
mssssp_result<typename G::weight_type, typename G::vertex_type>
multi_source_sssp(P policy, G const& g,
                  std::vector<typename G::vertex_type> const& sources,
                  MaskFn lane_mask = {}) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  expects(!sources.empty() && sources.size() <= 64,
          "multi_source_sssp: need 1..64 sources");
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::size_t const s = sources.size();
  std::uint64_t const full_mask =
      s == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << s) - 1);

  mssssp_result<W, V> result;
  result.dist.assign(s, std::vector<W>(n, infinity_v<W>));

  std::vector<std::uint64_t> frontier_bits(n, 0), next_bits(n, 0);
  std::size_t active = 0;
  for (std::size_t i = 0; i < s; ++i) {
    V const src = sources[i];
    expects(src >= 0 && src < g.get_num_vertices(),
            "multi_source_sssp: source out of range");
    if (frontier_bits[static_cast<std::size_t>(src)] == 0)
      ++active;
    frontier_bits[static_cast<std::size_t>(src)] |= std::uint64_t{1} << i;
    result.dist[i][static_cast<std::size_t>(src)] = W{0};
  }

  std::uint64_t* const cur_p = frontier_bits.data();
  std::uint64_t* const nxt_p = next_bits.data();
  // Raw lane pointers so the relaxation lambda indexes without bounds
  // re-derivation per edge.
  std::vector<W*> lanes(s);
  for (std::size_t i = 0; i < s; ++i)
    lanes[i] = result.dist[i].data();
  W* const* const lane_p = lanes.data();

  telemetry::recorder* const rec = telemetry::current();

  bool any = true;
  while (any) {
    std::uint64_t const mask = full_mask & lane_mask(result.iterations);
    if (mask == 0)
      break;

    if (rec)
      rec->begin_superstep(active, direction_t::push);
    auto const probe =
        telemetry::make_probe("mssssp.relax", policy, active);

    operators::compute_vertices(policy, g, [&g, cur_p, nxt_p, lane_p, mask,
                                            &probe](V v) {
      std::uint64_t const bits = cur_p[v] & mask;
      if (bits == 0)
        return;
      // Snapshot each live lane's distance at v once per vertex: a stale
      // value only costs a re-relaxation (monotone convergence), and the
      // atomic load keeps TSAN honest about racing atomic::min writers.
      W base[64];
      {
        std::uint64_t b = bits;
        while (b != 0) {
          unsigned const lane = static_cast<unsigned>(__builtin_ctzll(b));
          b &= b - 1;
          base[lane] = atomic::load(&lane_p[lane][v]);
        }
      }
      std::size_t inspected = 0, relaxed = 0;
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        W const weight = g.get_edge_weight(e);
        std::uint64_t improved = 0;
        std::uint64_t b = bits;
        while (b != 0) {
          unsigned const lane = static_cast<unsigned>(__builtin_ctzll(b));
          b &= b - 1;
          ++inspected;
          W const new_d = base[lane] + weight;
          W const curr_d =
              atomic::min(&lane_p[lane][static_cast<std::size_t>(nb)], new_d);
          if (new_d < curr_d) {
            improved |= std::uint64_t{1} << lane;
            ++relaxed;
          }
        }
        if (improved != 0) {
          std::atomic_ref<std::uint64_t> ref(
              nxt_p[static_cast<std::size_t>(nb)]);
          ref.fetch_or(improved, std::memory_order_relaxed);
        }
      }
      probe.add_edges(inspected, relaxed);
    });

    std::uint64_t any_bits = 0;
    std::size_t next_active = 0;
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t const fresh = nxt_p[v];
      cur_p[v] = fresh;
      nxt_p[v] = 0;
      any_bits |= fresh;
      if (fresh != 0)
        ++next_active;
    }
    if (rec)
      rec->end_superstep(next_active);
    any = any_bits != 0;
    active = next_active;
    ++result.iterations;
  }
  return result;
}

}  // namespace essentials::algorithms
