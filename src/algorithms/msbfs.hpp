#pragma once

/// \file algorithms/msbfs.hpp
/// \brief Bit-parallel multi-source BFS (MS-BFS): run up to 64 BFS
/// traversals at once, one bit lane per source.  A vertex's frontier
/// membership across all traversals is a single u64, so one pass over an
/// edge advances every search that wants it — the technique behind fast
/// all-pairs-ish analytics (betweenness sampling, closeness, diameter).
///
/// The frontier here is a *vector of bitmasks* — yet another underlying
/// representation behind the same conceptual interface, which is the
/// paper's §III-B point taken to its logical extreme.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct msbfs_result {
  /// depth[s][v]: hops from sources[s] to v, -1 if unreached.
  std::vector<std::vector<V>> depth;
  std::size_t iterations = 0;
};

/// Multi-source BFS from up to 64 sources.  Push-style level-synchronous:
/// each superstep, every vertex with new search bits propagates them to
/// its out-neighbors with atomic fetch_or.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
msbfs_result<typename G::vertex_type> multi_source_bfs(
    P policy, G const& g,
    std::vector<typename G::vertex_type> const& sources) {
  using V = typename G::vertex_type;
  expects(!sources.empty() && sources.size() <= 64,
          "multi_source_bfs: need 1..64 sources");
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::size_t const s = sources.size();

  msbfs_result<V> result;
  result.depth.assign(s, std::vector<V>(n, V{-1}));

  // seen[v]: searches that have reached v; frontier_bits[v]: searches that
  // reached v in the previous superstep (and must expand from it now).
  std::vector<std::uint64_t> seen(n, 0), frontier_bits(n, 0), next_bits(n, 0);
  for (std::size_t i = 0; i < s; ++i) {
    V const src = sources[i];
    expects(src >= 0 && src < g.get_num_vertices(),
            "multi_source_bfs: source out of range");
    seen[static_cast<std::size_t>(src)] |= std::uint64_t{1} << i;
    frontier_bits[static_cast<std::size_t>(src)] |= std::uint64_t{1} << i;
    result.depth[i][static_cast<std::size_t>(src)] = 0;
  }

  std::uint64_t* const seen_p = seen.data();
  std::uint64_t* const cur_p = frontier_bits.data();
  std::uint64_t* const nxt_p = next_bits.data();

  V level = 0;
  bool any = true;
  while (any) {
    // Expand: push each vertex's new bits to its neighbors.
    operators::compute_vertices(policy, g, [&g, cur_p, nxt_p](V v) {
      std::uint64_t const bits = cur_p[v];
      if (bits == 0)
        return;
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        // fetch_or only for genuinely new bits cuts contention.
        std::atomic_ref<std::uint64_t> ref(nxt_p[static_cast<std::size_t>(nb)]);
        if ((ref.load(std::memory_order_relaxed) & bits) != bits)
          ref.fetch_or(bits, std::memory_order_relaxed);
      }
    });

    // Settle: new = next & ~seen becomes the next frontier; record depths.
    ++level;
    std::uint64_t any_bits = 0;
    for (std::size_t v = 0; v < n; ++v) {
      std::uint64_t const fresh = nxt_p[v] & ~seen_p[v];
      seen_p[v] |= fresh;
      cur_p[v] = fresh;
      nxt_p[v] = 0;
      any_bits |= fresh;
      if (fresh != 0) {
        std::uint64_t bits = fresh;
        while (bits != 0) {
          unsigned const lane = static_cast<unsigned>(__builtin_ctzll(bits));
          bits &= bits - 1;
          result.depth[lane][v] = level;
        }
      }
    }
    any = any_bits != 0;
    ++result.iterations;
  }
  return result;
}

}  // namespace essentials::algorithms
