#pragma once

/// \file algorithms/coloring.hpp
/// \brief Greedy graph coloring: Jones–Plassmann with random priorities
/// (the classic parallel independent-set schedule) and serial first-fit as
/// the baseline.  Colorings differ between variants; validity (no edge
/// monochromatic) and color count are what tests check.
///
/// Undirected semantics: run on a symmetrized graph.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "generators/random.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct coloring_result {
  std::vector<V> colors;  ///< color id per vertex, 0-based
  V num_colors = 0;
  std::size_t rounds = 0;
};

/// Jones–Plassmann: each round, every uncolored vertex whose random
/// priority beats all uncolored neighbors takes the smallest color absent
/// from its neighborhood.  Rounds are BSP supersteps over a shrinking
/// frontier of uncolored vertices.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
coloring_result<typename G::vertex_type> color_jones_plassmann(
    P policy, G const& g, std::uint64_t seed = 1) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  coloring_result<V> result;
  result.colors.assign(n, V{-1});
  V* const colors = result.colors.data();

  // Random priorities; ties broken by vertex id.
  std::vector<std::uint64_t> priority(n);
  generators::rng_t rng(seed);
  for (auto& p : priority)
    p = rng.next_u64();

  std::vector<V> uncolored(n);
  std::iota(uncolored.begin(), uncolored.end(), V{0});

  while (!uncolored.empty()) {
    frontier::sparse_frontier<V> f(uncolored);
    std::vector<char> wins(n, 0);
    char* const win = wins.data();

    // Phase 1: find local maxima among uncolored vertices.
    operators::compute(policy, f, [&](V v) {
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        if (colors[nb] != V{-1} || nb == v)
          continue;
        auto const pv = priority[static_cast<std::size_t>(v)];
        auto const pn = priority[static_cast<std::size_t>(nb)];
        if (pn > pv || (pn == pv && nb > v))
          return;  // a live neighbor outranks us this round
      }
      win[v] = 1;
    });

    // Phase 2: winners take the smallest color missing from their
    // neighborhood.  Winners form an independent set among uncolored
    // vertices, so no two adjacent vertices color simultaneously.
    operators::compute(policy, f, [&](V v) {
      if (!win[v])
        return;
      std::vector<char> used;
      used.assign(static_cast<std::size_t>(g.get_out_degree(v)) + 1, 0);
      for (auto const e : g.get_edges(v)) {
        V const c = colors[g.get_dest_vertex(e)];
        if (c != V{-1} && static_cast<std::size_t>(c) < used.size())
          used[static_cast<std::size_t>(c)] = 1;
      }
      V c = 0;
      while (used[static_cast<std::size_t>(c)])
        ++c;
      colors[v] = c;
    });

    std::vector<V> next;
    next.reserve(uncolored.size());
    for (V const v : uncolored)
      if (colors[static_cast<std::size_t>(v)] == V{-1})
        next.push_back(v);
    expects(next.size() < uncolored.size(),
            "color_jones_plassmann: no progress (graph mutated mid-run?)");
    uncolored = std::move(next);
    ++result.rounds;
  }

  for (std::size_t v = 0; v < n; ++v)
    result.num_colors = std::max(result.num_colors,
                                 static_cast<V>(result.colors[v] + 1));
  return result;
}

/// Serial first-fit in vertex order — the baseline color count.
template <typename G>
coloring_result<typename G::vertex_type> color_serial(G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  coloring_result<V> result;
  result.colors.assign(n, V{-1});
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    std::vector<char> used(static_cast<std::size_t>(g.get_out_degree(v)) + 1,
                           0);
    for (auto const e : g.get_edges(v)) {
      V const c = result.colors[static_cast<std::size_t>(g.get_dest_vertex(e))];
      if (c != V{-1} && static_cast<std::size_t>(c) < used.size())
        used[static_cast<std::size_t>(c)] = 1;
    }
    V c = 0;
    while (used[static_cast<std::size_t>(c)])
      ++c;
    result.colors[static_cast<std::size_t>(v)] = c;
    result.num_colors = std::max(result.num_colors, static_cast<V>(c + 1));
  }
  result.rounds = 1;
  return result;
}

/// Validity check: no edge joins two vertices of the same color, and every
/// vertex is colored.
template <typename G>
bool is_valid_coloring(G const& g,
                       std::vector<typename G::vertex_type> const& colors) {
  using V = typename G::vertex_type;
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    if (colors[static_cast<std::size_t>(v)] == V{-1})
      return false;
    for (auto const e : g.get_edges(v)) {
      V const nb = g.get_dest_vertex(e);
      if (nb != v && colors[static_cast<std::size_t>(nb)] ==
                         colors[static_cast<std::size_t>(v)])
        return false;
    }
  }
  return true;
}

}  // namespace essentials::algorithms
