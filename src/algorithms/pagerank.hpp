#pragma once

/// \file algorithms/pagerank.hpp
/// \brief PageRank — the canonical *fixed-point* vertex program, where the
/// loop's convergence condition is a value measurement (L1 delta of the
/// rank vector) rather than frontier emptiness.
///
/// Two directions, identical fixed point:
///  - `pagerank` (pull, CSC): each vertex gathers rank/out-degree from its
///    in-neighbors — no atomics, the textbook parallel formulation.
///  - `pagerank_push` (push, CSR): each vertex scatters its contribution to
///    out-neighbors with atomic adds — the shape a push-only system uses.
/// Plus `pagerank_serial`, the oracle.
///
/// Dangling vertices (out-degree 0) redistribute their rank uniformly, so
/// the rank vector stays a probability distribution (sums to 1).

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/operators/reduce.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"
#include "parallel/first_touch.hpp"

namespace essentials::algorithms {

namespace detail {

/// Rank-vector scratch, placed where the sweeps will stream it: under a
/// parallel policy the pages are first-touched by the pool's workers (the
/// same deterministic chunk map compute_vertices uses), under `seq` it is a
/// plain serial fill.  Values are identical either way.
template <typename P>
parallel::numa_vector<double> pagerank_scratch(P const& policy, std::size_t n,
                                               double value) {
  if constexpr (std::decay_t<P>::is_parallel) {
    return parallel::first_touch_vector<double>(policy.pool(), n, value);
  } else {
    (void)policy;
    return parallel::numa_vector<double>(n, value);
  }
}

}  // namespace detail

struct pagerank_options {
  double damping = 0.85;
  double tolerance = 1e-9;      ///< L1 convergence threshold
  std::size_t max_iterations = 100;
};

template <typename Rank = double>
struct pagerank_result {
  std::vector<Rank> ranks;
  std::size_t iterations = 0;
  double final_delta = 0.0;  ///< L1 delta of the last sweep
};

/// Pull PageRank (CSC gather).  Requires the CSC view; out-degrees come
/// from the CSR view when present, else from a CSC column scan.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csc && G::has_csr)
pagerank_result<> pagerank(P policy, G const& g, pagerank_options opt = {}) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  pagerank_result<> result;
  if (n == 0)
    return result;

  auto rank = detail::pagerank_scratch(policy, n, 1.0 / static_cast<double>(n));
  auto next = detail::pagerank_scratch(policy, n, 0.0);
  auto out_contrib = detail::pagerank_scratch(policy, n, 0.0);

  // Fixed-point telemetry: every sweep touches all n vertices, so each
  // superstep records frontier n -> n, direction pull, metric = L1 delta.
  telemetry::recorder* const rec = telemetry::current();

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    if (rec)
      rec->begin_superstep(n, direction_t::pull);
    // Precompute rank/out-degree, and pool dangling mass.
    double const dangling = operators::reduce_vertices(
        policy, g, 0.0,
        [&](V v) {
          auto const deg = g.get_out_degree(v);
          if (deg == 0)
            return rank[static_cast<std::size_t>(v)];
          out_contrib[static_cast<std::size_t>(v)] =
              rank[static_cast<std::size_t>(v)] / static_cast<double>(deg);
          return 0.0;
        },
        [](double a, double b) { return a + b; });

    double const base = (1.0 - opt.damping) / static_cast<double>(n) +
                        opt.damping * dangling / static_cast<double>(n);

    operators::compute_vertices(policy, g, [&](V v) {
      double sum = 0.0;
      for (auto const e : g.get_in_edges(v))
        sum += out_contrib[static_cast<std::size_t>(g.get_in_source_vertex(e))];
      next[static_cast<std::size_t>(v)] = base + opt.damping * sum;
    });

    double const delta = operators::reduce_vertices(
        policy, g, 0.0,
        [&](V v) {
          return std::abs(next[static_cast<std::size_t>(v)] -
                          rank[static_cast<std::size_t>(v)]);
        },
        [](double a, double b) { return a + b; });

    rank.swap(next);
    ++result.iterations;
    result.final_delta = delta;
    if (rec) {
      rec->set_metric(delta);
      rec->end_superstep(n);
    }
    if (delta < opt.tolerance)
      break;
  }
  // result.ranks is a plain std::vector (public API type); the NUMA-placed
  // scratch bridges out with one O(n) copy.
  result.ranks.assign(rank.begin(), rank.end());
  return result;
}

/// Push PageRank (CSR scatter with atomic adds) — same fixed point as the
/// pull variant; exists to demonstrate (and measure, bench_push_pull) the
/// push/pull duality on a non-traversal algorithm.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csr)
pagerank_result<> pagerank_push(P policy, G const& g,
                                pagerank_options opt = {}) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  pagerank_result<> result;
  if (n == 0)
    return result;

  auto rank = detail::pagerank_scratch(policy, n, 1.0 / static_cast<double>(n));
  auto next = detail::pagerank_scratch(policy, n, 0.0);

  telemetry::recorder* const rec = telemetry::current();

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    if (rec)
      rec->begin_superstep(n, direction_t::push);
    double const dangling = operators::reduce_vertices(
        policy, g, 0.0,
        [&](V v) {
          return g.get_out_degree(v) == 0 ? rank[static_cast<std::size_t>(v)]
                                          : 0.0;
        },
        [](double a, double b) { return a + b; });
    double const base = (1.0 - opt.damping) / static_cast<double>(n) +
                        opt.damping * dangling / static_cast<double>(n);

    operators::compute_vertices(policy, g,
                                [&](V v) { next[static_cast<std::size_t>(v)] = base; });

    operators::compute_vertices(policy, g, [&](V v) {
      auto const deg = g.get_out_degree(v);
      if (deg == 0)
        return;
      double const contrib = opt.damping *
                             rank[static_cast<std::size_t>(v)] /
                             static_cast<double>(deg);
      for (auto const e : g.get_edges(v))
        atomic::add(&next[static_cast<std::size_t>(g.get_dest_vertex(e))],
                    contrib);
    });

    double const delta = operators::reduce_vertices(
        policy, g, 0.0,
        [&](V v) {
          return std::abs(next[static_cast<std::size_t>(v)] -
                          rank[static_cast<std::size_t>(v)]);
        },
        [](double a, double b) { return a + b; });

    rank.swap(next);
    ++result.iterations;
    result.final_delta = delta;
    if (rec) {
      rec->set_metric(delta);
      rec->end_superstep(n);
    }
    if (delta < opt.tolerance)
      break;
  }
  // result.ranks is a plain std::vector (public API type); the NUMA-placed
  // scratch bridges out with one O(n) copy.
  result.ranks.assign(rank.begin(), rank.end());
  return result;
}

/// Serial oracle (identical arithmetic to the pull variant).
template <typename G>
  requires (G::has_csc && G::has_csr)
pagerank_result<> pagerank_serial(G const& g, pagerank_options opt = {}) {
  return pagerank(execution::seq, g, opt);
}

}  // namespace essentials::algorithms
