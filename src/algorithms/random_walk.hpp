#pragma once

/// \file algorithms/random_walk.hpp
/// \brief Parallel random walks: uniform and weighted next-hop sampling,
/// batched over many walkers — the sampling primitive behind node2vec-style
/// embeddings and Monte-Carlo PageRank.
///
/// Each walker owns a deterministic RNG stream (seed ⊕ walker id via
/// splitmix64), so results are reproducible regardless of the execution
/// policy or lane assignment — the property the tests pin down.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "generators/random.hpp"

namespace essentials::algorithms {

struct random_walk_options {
  std::size_t num_walks = 16;   ///< walkers per start vertex
  std::size_t walk_length = 8;  ///< steps per walk (vertices visited - 1)
  bool weighted = false;        ///< sample next hop by edge weight
  std::uint64_t seed = 1;
};

template <typename V = vertex_t>
struct random_walk_result {
  /// walks[w] = the w-th walk's vertex sequence; a walk stops early at a
  /// sink (no out-edges), so sequences may be shorter than walk_length + 1.
  std::vector<std::vector<V>> walks;
};

/// Run `opt.num_walks` walks from every vertex in `starts`.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
random_walk_result<typename G::vertex_type> random_walks(
    P policy, G const& g,
    std::vector<typename G::vertex_type> const& starts,
    random_walk_options opt = {}) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;

  random_walk_result<V> result;
  std::size_t const total = starts.size() * opt.num_walks;
  result.walks.assign(total, {});

  auto const walk_body = [&](std::size_t w) {
    V const start = starts[w / opt.num_walks];
    expects(start >= 0 && start < g.get_num_vertices(),
            "random_walks: start vertex out of range");
    // Per-walker stream: mix the walker index into the seed so every walk
    // is independent and lane-assignment-invariant (rng_t itself runs the
    // raw seed through splitmix64 twice).
    generators::rng_t rng(opt.seed ^
                          (0x9E3779B97F4A7C15ull * (static_cast<std::uint64_t>(w) + 1)));

    auto& path = result.walks[w];
    path.reserve(opt.walk_length + 1);
    V v = start;
    path.push_back(v);
    for (std::size_t step = 0; step < opt.walk_length; ++step) {
      auto const edges = g.get_edges(v);
      auto const degree = edges.size();
      if (degree == 0)
        break;  // sink: the walk ends early
      auto const base = *edges.begin();
      if (!opt.weighted) {
        auto const pick = rng.next_below(degree);
        v = g.get_dest_vertex(
            static_cast<typename G::edge_type>(base + pick));
      } else {
        // Weighted reservoir-free sampling: draw in [0, total weight).
        W total_w{0};
        for (auto const e : edges)
          total_w += g.get_edge_weight(e);
        auto target = static_cast<W>(rng.next_double() *
                                     static_cast<double>(total_w));
        V chosen = g.get_dest_vertex(base);
        for (auto const e : edges) {
          W const we = g.get_edge_weight(e);
          if (target < we) {
            chosen = g.get_dest_vertex(e);
            break;
          }
          target -= we;
        }
        v = chosen;
      }
      path.push_back(v);
    }
  };

  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::parallel_for(policy.pool(), std::size_t{0}, total, walk_body,
                           /*grain=*/8);
  } else {
    for (std::size_t w = 0; w < total; ++w)
      walk_body(w);
  }
  return result;
}

/// Visit-frequency estimate from a batch of walks (normalized histogram) —
/// the Monte-Carlo PageRank estimator.
template <typename V>
std::vector<double> visit_frequencies(random_walk_result<V> const& r,
                                      std::size_t num_vertices) {
  std::vector<double> freq(num_vertices, 0.0);
  std::size_t total = 0;
  for (auto const& walk : r.walks)
    for (V const v : walk) {
      freq[static_cast<std::size_t>(v)] += 1.0;
      ++total;
    }
  if (total > 0)
    for (auto& f : freq)
      f /= static_cast<double>(total);
  return freq;
}

}  // namespace essentials::algorithms
