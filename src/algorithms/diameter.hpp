#pragma once

/// \file algorithms/diameter.hpp
/// \brief Graph diameter / eccentricity estimation by BFS sweeps: exact
/// all-sources for small graphs, and the iterated "double sweep" lower
/// bound (repeatedly BFS from the farthest vertex found) that road-network
/// and social-graph tooling actually uses.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "algorithms/bfs.hpp"
#include "core/execution.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct diameter_result {
  V diameter = 0;         ///< max finite eccentricity found
  V pseudo_source = 0;    ///< endpoint vertex realizing the bound
  std::size_t sweeps = 0; ///< BFS runs performed
};

/// Exact unweighted diameter by BFS from every vertex — O(V * (V + E)),
/// the oracle for the estimator on test-sized graphs.  Unreachable pairs
/// are ignored (diameter of the largest reachable structure).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
diameter_result<typename G::vertex_type> diameter_exact(P policy,
                                                        G const& g) {
  using V = typename G::vertex_type;
  diameter_result<V> result;
  for (V s = 0; s < g.get_num_vertices(); ++s) {
    auto const depths = bfs(policy, g, s).depths;
    for (V const d : depths) {
      if (d > result.diameter) {
        result.diameter = d;
        result.pseudo_source = s;
      }
    }
    ++result.sweeps;
  }
  return result;
}

/// Iterated double sweep: BFS from a start, jump to the farthest vertex,
/// repeat.  Each sweep's max depth is a lower bound on the diameter; the
/// bound is exact on trees and typically tight on meshes.  `max_sweeps`
/// bounds work.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
diameter_result<typename G::vertex_type> diameter_double_sweep(
    P policy, G const& g, typename G::vertex_type start = 0,
    std::size_t max_sweeps = 4) {
  using V = typename G::vertex_type;
  expects(start >= 0 && start < g.get_num_vertices(),
          "diameter_double_sweep: start out of range");
  diameter_result<V> result;
  V source = start;
  for (std::size_t sweep = 0; sweep < max_sweeps; ++sweep) {
    auto const depths = bfs(policy, g, source).depths;
    V far_vertex = source;
    V far_depth = 0;
    for (V v = 0; v < g.get_num_vertices(); ++v) {
      if (depths[static_cast<std::size_t>(v)] > far_depth) {
        far_depth = depths[static_cast<std::size_t>(v)];
        far_vertex = v;
      }
    }
    ++result.sweeps;
    if (far_depth > result.diameter) {
      result.diameter = far_depth;
      result.pseudo_source = source;
    } else {
      break;  // no improvement: the bound has stabilized
    }
    source = far_vertex;
  }
  return result;
}

}  // namespace essentials::algorithms
