#pragma once

/// \file algorithms/betweenness.hpp
/// \brief Betweenness centrality (Brandes' algorithm) on unweighted graphs:
/// a forward BFS phase that counts shortest paths per level, then a
/// backward dependency-accumulation sweep over the levels in reverse — the
/// classic two-phase frontier program.
///
/// `betweenness` runs the forward phase with the framework's parallel
/// operators (level-synchronous BFS with atomic path counting) and the
/// backward phase level-parallel.  `betweenness_serial` is Brandes'
/// textbook stack formulation, the oracle.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename W = double>
struct bc_result {
  std::vector<W> centrality;
  std::size_t levels = 0;
};

/// Single-source Brandes pass; `centrality` accumulates across calls so
/// callers can sum over any source set (all-pairs, or sampled).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
void betweenness_from_source(P policy, G const& g,
                             typename G::vertex_type source,
                             std::vector<double>& centrality) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using WT = typename G::weight_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  expects(centrality.size() == n, "betweenness: centrality size mismatch");

  std::vector<V> depth(n, V{-1});
  std::vector<double> sigma(n, 0.0);  // shortest-path counts
  std::vector<double> delta(n, 0.0);  // dependencies
  depth[static_cast<std::size_t>(source)] = 0;
  sigma[static_cast<std::size_t>(source)] = 1.0;
  V* const d = depth.data();
  double* const sg = sigma.data();

  parallel::atomic_bitset visited(n);
  visited.set(static_cast<std::size_t>(source));
  // `settled[v]` == v was discovered in a *previous* superstep.  Lanes use
  // it (read-only during a superstep) to decide whether an edge enters the
  // next level, so the sigma accumulation never races with the claimer's
  // depth write.
  std::vector<char> settled(n, 0);
  settled[static_cast<std::size_t>(source)] = 1;

  // Forward: level-synchronous BFS recording each level's frontier.
  std::vector<std::vector<V>> levels;
  frontier::sparse_frontier<V> f;
  f.add_vertex(source);
  levels.push_back(f.to_vector());

  std::size_t level = 0;
  while (!f.empty()) {
    V const next_depth = static_cast<V>(level + 1);
    char const* const done = settled.data();
    auto out = operators::neighbors_expand(
        policy, g, f,
        [&visited, d, sg, done, next_depth](V const src, V const dst, E const,
                                            WT const) {
          if (done[dst])
            return false;  // settled in an earlier level
          // dst belongs to the next level: every edge from the current
          // level contributes src's path count.  sigma[src] is stable
          // within the superstep (only next-level sigmas are written).
          atomic::add(&sg[dst], sg[src]);
          bool const first = visited.test_and_set(static_cast<std::size_t>(dst));
          if (first)
            d[dst] = next_depth;
          return first;
        });
    f = std::move(out);
    f.for_each_active(
        [&settled](V v) { settled[static_cast<std::size_t>(v)] = 1; });
    if (!f.empty())
      levels.push_back(f.to_vector());
    ++level;
  }

  // Backward: accumulate dependencies level by level, deepest first.  The
  // per-level sweep is parallel (vertices within a level are independent
  // writers of their own delta through in-edge... here via out-edge scan of
  // predecessors: v pulls from successors w with d[w] == d[v]+1).
  double* const dl = delta.data();
  for (std::size_t li = levels.size(); li-- > 0;) {
    auto const& lvl = levels[li];
    frontier::sparse_frontier<V> lf(lvl);
    operators::compute(policy, lf, [&](V v) {
      double acc = 0.0;
      for (auto const e : g.get_edges(v)) {
        V const w = g.get_dest_vertex(e);
        if (d[w] == d[v] + 1 && sg[w] > 0.0)
          acc += sg[v] / sg[w] * (1.0 + dl[w]);
      }
      dl[v] = acc;
    });
  }
  for (std::size_t v = 0; v < n; ++v)
    if (static_cast<V>(v) != source && depth[v] != V{-1})
      centrality[v] += delta[v];
}

/// Betweenness from every vertex (exact) or the first `num_sources`
/// vertices (approximate when smaller than V).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
bc_result<> betweenness(P policy, G const& g, std::size_t num_sources = 0) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  bc_result<> result;
  result.centrality.assign(n, 0.0);
  std::size_t const sources = num_sources == 0 ? n : std::min(num_sources, n);
  for (std::size_t s = 0; s < sources; ++s)
    betweenness_from_source(policy, g, static_cast<V>(s), result.centrality);
  return result;
}

/// Brandes' serial algorithm (stack + predecessor lists) — the oracle.
template <typename G>
bc_result<> betweenness_serial(G const& g, std::size_t num_sources = 0) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  bc_result<> result;
  result.centrality.assign(n, 0.0);
  std::size_t const sources = num_sources == 0 ? n : std::min(num_sources, n);

  for (std::size_t s = 0; s < sources; ++s) {
    V const source = static_cast<V>(s);
    std::vector<std::vector<V>> pred(n);
    std::vector<double> sigma(n, 0.0);
    std::vector<V> dist(n, V{-1});
    std::vector<V> stack;
    stack.reserve(n);
    sigma[s] = 1.0;
    dist[s] = 0;

    std::vector<V> queue{source};
    std::size_t head = 0;
    while (head < queue.size()) {
      V const v = queue[head++];
      stack.push_back(v);
      for (auto const e : g.get_edges(v)) {
        V const w = g.get_dest_vertex(e);
        if (dist[static_cast<std::size_t>(w)] == V{-1}) {
          dist[static_cast<std::size_t>(w)] =
              dist[static_cast<std::size_t>(v)] + 1;
          queue.push_back(w);
        }
        if (dist[static_cast<std::size_t>(w)] ==
            dist[static_cast<std::size_t>(v)] + 1) {
          sigma[static_cast<std::size_t>(w)] +=
              sigma[static_cast<std::size_t>(v)];
          pred[static_cast<std::size_t>(w)].push_back(v);
        }
      }
    }
    std::vector<double> delta(n, 0.0);
    for (std::size_t i = stack.size(); i-- > 0;) {
      V const w = stack[i];
      for (V const v : pred[static_cast<std::size_t>(w)])
        delta[static_cast<std::size_t>(v)] +=
            sigma[static_cast<std::size_t>(v)] /
            sigma[static_cast<std::size_t>(w)] *
            (1.0 + delta[static_cast<std::size_t>(w)]);
      if (w != source)
        result.centrality[static_cast<std::size_t>(w)] +=
            delta[static_cast<std::size_t>(w)];
    }
  }
  return result;
}

}  // namespace essentials::algorithms
