#pragma once

/// \file algorithms/sssp_delta.hpp
/// \brief Delta-stepping SSSP (Meyer & Sanders) — the middle ground between
/// Listing 4's fully-synchronous label correction and the fully
/// asynchronous queue: vertices are bucketed by distance/Δ, buckets are
/// processed in order, and *within* a bucket relaxations run as parallel
/// BSP waves.  A small Δ approaches Dijkstra (little wasted work, many
/// buckets); a large Δ approaches Bellman-Ford (few barriers, re-relaxation
/// work).  bench_timing_models' companion ablation in bench_algorithms
/// sweeps Δ.
///
/// Expressed entirely with the framework's essential components: the bucket
/// is a sparse frontier, light-edge waves are neighbors_expand calls inside
/// a bsp_loop, and the outer bucket loop is another loop structure with the
/// "all buckets empty" convergence condition.

#include <cmath>
#include <cstddef>
#include <vector>

#include "algorithms/relax.hpp"
#include "algorithms/sssp.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/filter.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// Delta-stepping SSSP.  `delta == 0` picks the classic heuristic
/// Δ = max_weight / average_degree (clamped to > 0).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
sssp_result<typename G::weight_type> sssp_delta_stepping(
    P policy, G const& g, typename G::vertex_type source,
    typename G::weight_type delta = 0) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_delta_stepping: source out of range");

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  sssp_result<W> result;
  result.distances.assign(n, infinity_v<W>);
  result.distances[static_cast<std::size_t>(source)] = W{0};
  W* const dist = result.distances.data();

  if (delta <= W{0}) {
    W max_w = W{0};
    for (E e = 0; e < g.get_num_edges(); ++e)
      max_w = std::max(max_w, g.get_edge_weight(e));
    double const avg_deg =
        n == 0 ? 1.0
               : std::max(1.0, static_cast<double>(g.get_num_edges()) /
                                   static_cast<double>(n));
    delta = std::max(static_cast<W>(max_w / static_cast<W>(avg_deg)),
                     static_cast<W>(1e-3));
  }

  // Buckets as sparse frontiers, grown on demand.  A vertex may appear in
  // several buckets; a stale appearance is filtered by the distance check
  // at processing time (standard delta-stepping practice).
  std::vector<frontier::sparse_frontier<V>> buckets(1);
  buckets[0].add_vertex(source);

  auto const bucket_of = [delta](W d) {
    return static_cast<std::size_t>(d / delta);
  };
  auto const ensure_bucket = [&buckets](std::size_t b) -> auto& {
    if (b >= buckets.size())
      buckets.resize(b + 1);
    return buckets[b];
  };

  std::size_t current = 0;
  while (current < buckets.size()) {
    if (buckets[current].empty()) {
      ++current;
      continue;
    }
    // Light-edge waves: relax edges with weight < Δ repeatedly until the
    // current bucket stops refilling; heavy edges are deferred one pass.
    frontier::sparse_frontier<V> settled;  // all vertices processed this bucket
    frontier::sparse_frontier<V> wave;
    swap(wave, buckets[current]);
    while (!wave.empty()) {
      // Drop stale entries (vertex moved to a lower bucket meanwhile).
      auto fresh = operators::filter(
          policy, wave, [dist, current, bucket_of](V v) {
            W const d = atomic::load(&dist[v]);
            return d != infinity_v<W> && bucket_of(d) == current;
          });
      for (V const v : fresh.active())
        settled.add_vertex(v);

      // Light band [0, Δ): heavy edges are handled after the bucket
      // settles.  The shared banded condition also reads dist[src] with an
      // atomic load — the plain read this pass carried before PR 8 raced
      // the concurrent atomic::min on the same word.
      auto next = operators::neighbors_expand(
          policy, g, fresh,
          make_banded_relax_condition(dist, W{0}, delta));
      if constexpr (std::decay_t<P>::is_parallel)
        operators::uniquify(policy, next, n);
      else
        operators::uniquify(execution::seq, next);

      // Re-bucket the relaxed vertices; only same-bucket ones continue the
      // wave.
      frontier::sparse_frontier<V> same;
      for (V const v : next.active()) {
        std::size_t const b = bucket_of(dist[static_cast<std::size_t>(v)]);
        if (b == current)
          same.add_vertex(v);
        else
          ensure_bucket(b).add_vertex(v);
      }
      swap(wave, same);
      ++result.iterations;
    }

    // Heavy-edge pass over everything settled in this bucket.
    if constexpr (std::decay_t<P>::is_parallel)
      operators::uniquify(policy, settled, n);
    else
      operators::uniquify(execution::seq, settled);
    auto heavy = operators::neighbors_expand(
        policy, g, settled,
        make_banded_relax_condition(dist, delta, infinity_v<W>));
    for (V const v : heavy.active())
      ensure_bucket(bucket_of(dist[static_cast<std::size_t>(v)]))
          .add_vertex(v);
    ++current;
  }
  return result;
}

}  // namespace essentials::algorithms
