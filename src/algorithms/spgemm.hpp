#pragma once

/// \file algorithms/spgemm.hpp
/// \brief Sparse general matrix–matrix multiply (SpGEMM), C = A · B over
/// CSR operands — the linear-algebra bridge the paper's overview draws
/// ("the duality between graphs and sparse matrices"), and a
/// Gunrock/essentials application.  Graph reading: C's sparsity pattern is
/// the set of length-2 paths A→B, so SpGEMM(A, A) is the 2-hop
/// neighborhood operator.
///
/// Row-parallel Gustavson: each row of C is accumulated independently
/// (dense accumulator scattered over B's columns touched), so the parallel
/// loop needs no atomics — lane-private accumulators, rows stitched
/// serially at the end (two-pass: sizes, then fill).

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/types.hpp"
#include "graph/formats.hpp"
#include "parallel/for_each.hpp"

namespace essentials::algorithms {

/// C = A · B.  A is num_rows x k, B is k x num_cols (dimensions checked).
/// Result rows hold strictly increasing column indices; explicit zeros
/// produced by cancellation are kept (standard SpGEMM semantics).
template <typename P, typename V, typename E, typename W>
  requires execution::synchronous_policy<P>
graph::csr_t<V, E, W> spgemm(P policy, graph::csr_t<V, E, W> const& a,
                             graph::csr_t<V, E, W> const& b) {
  expects(a.num_cols == b.num_rows, "spgemm: inner dimensions differ");
  std::size_t const rows = static_cast<std::size_t>(a.num_rows);
  std::size_t const cols = static_cast<std::size_t>(b.num_cols);

  // Per-row outputs, built lane-parallel with a reusable dense accumulator
  // per chunk (Gustavson's algorithm).
  std::vector<std::vector<V>> row_cols(rows);
  std::vector<std::vector<W>> row_vals(rows);

  auto const compute_rows = [&](std::size_t lo, std::size_t hi) {
    std::vector<W> accumulator(cols, W{0});
    std::vector<char> touched(cols, 0);
    std::vector<V> touched_list;
    for (std::size_t i = lo; i < hi; ++i) {
      touched_list.clear();
      for (E ea = a.row_offsets[i]; ea < a.row_offsets[i + 1]; ++ea) {
        auto const k = static_cast<std::size_t>(
            a.column_indices[static_cast<std::size_t>(ea)]);
        W const a_ik = a.values[static_cast<std::size_t>(ea)];
        for (E eb = b.row_offsets[k]; eb < b.row_offsets[k + 1]; ++eb) {
          auto const j = static_cast<std::size_t>(
              b.column_indices[static_cast<std::size_t>(eb)]);
          if (!touched[j]) {
            touched[j] = 1;
            touched_list.push_back(static_cast<V>(j));
          }
          accumulator[j] += a_ik * b.values[static_cast<std::size_t>(eb)];
        }
      }
      std::sort(touched_list.begin(), touched_list.end());
      row_cols[i].assign(touched_list.begin(), touched_list.end());
      row_vals[i].resize(touched_list.size());
      for (std::size_t t = 0; t < touched_list.size(); ++t) {
        auto const j = static_cast<std::size_t>(touched_list[t]);
        row_vals[i][t] = accumulator[j];
        accumulator[j] = W{0};
        touched[j] = 0;
      }
    }
  };

  if constexpr (std::decay_t<P>::is_parallel) {
    policy.pool().run_blocked(rows, compute_rows, /*grain=*/8);
  } else {
    compute_rows(0, rows);
  }

  // Stitch rows into one CSR.
  graph::csr_t<V, E, W> c;
  c.num_rows = a.num_rows;
  c.num_cols = b.num_cols;
  c.row_offsets.resize(rows + 1);
  c.row_offsets[0] = E{0};
  for (std::size_t i = 0; i < rows; ++i)
    c.row_offsets[i + 1] =
        c.row_offsets[i] + static_cast<E>(row_cols[i].size());
  c.column_indices.resize(static_cast<std::size_t>(c.row_offsets[rows]));
  c.values.resize(c.column_indices.size());
  for (std::size_t i = 0; i < rows; ++i) {
    auto const base = static_cast<std::size_t>(c.row_offsets[i]);
    std::copy(row_cols[i].begin(), row_cols[i].end(),
              c.column_indices.begin() + static_cast<std::ptrdiff_t>(base));
    std::copy(row_vals[i].begin(), row_vals[i].end(),
              c.values.begin() + static_cast<std::ptrdiff_t>(base));
  }
  return c;
}

/// Dense reference multiply — the oracle for small operands.
template <typename V, typename E, typename W>
std::vector<std::vector<double>> dense_matmul(graph::csr_t<V, E, W> const& a,
                                              graph::csr_t<V, E, W> const& b) {
  expects(a.num_cols == b.num_rows, "dense_matmul: inner dimensions differ");
  std::vector<std::vector<double>> c(
      static_cast<std::size_t>(a.num_rows),
      std::vector<double>(static_cast<std::size_t>(b.num_cols), 0.0));
  for (std::size_t i = 0; i < static_cast<std::size_t>(a.num_rows); ++i)
    for (E ea = a.row_offsets[i]; ea < a.row_offsets[i + 1]; ++ea) {
      auto const k = static_cast<std::size_t>(
          a.column_indices[static_cast<std::size_t>(ea)]);
      double const a_ik =
          static_cast<double>(a.values[static_cast<std::size_t>(ea)]);
      for (E eb = b.row_offsets[k]; eb < b.row_offsets[k + 1]; ++eb)
        c[i][static_cast<std::size_t>(
            b.column_indices[static_cast<std::size_t>(eb)])] +=
            a_ik * static_cast<double>(b.values[static_cast<std::size_t>(eb)]);
    }
  return c;
}

}  // namespace essentials::algorithms
