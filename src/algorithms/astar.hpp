#pragma once

/// \file algorithms/astar.hpp
/// \brief Point-to-point shortest path: A* with a user heuristic, plus
/// bidirectional-free early-exit Dijkstra as the baseline.  The road-
/// navigation workload's production query shape (SSSP computes the full
/// tree; route queries want one target fast).
///
/// The heuristic must be *admissible* (never overestimate the remaining
/// distance) for optimality — e.g. scaled Manhattan distance on a grid
/// whose minimum edge weight scales the bound (helper provided).

#include <algorithm>
#include <cstddef>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t, typename W = weight_t>
struct point_to_point_result {
  W distance = infinity_v<W>;     ///< infinity if unreachable
  std::vector<V> path;            ///< source..target (empty if unreachable)
  std::size_t settled = 0;        ///< vertices popped (search effort)
};

/// A* from `source` to `target` with heuristic `h(v) ~ dist(v, target)`.
/// h must be admissible; h == 0 degrades to early-exit Dijkstra.
template <typename G>
point_to_point_result<typename G::vertex_type, typename G::weight_type>
astar(G const& g, typename G::vertex_type source,
      typename G::vertex_type target,
      std::function<typename G::weight_type(typename G::vertex_type)> h) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "astar: source out of range");
  expects(target >= 0 && target < g.get_num_vertices(),
          "astar: target out of range");

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::vector<W> dist(n, infinity_v<W>);
  std::vector<V> parent(n, invalid_vertex<V>);
  std::vector<char> settled(n, 0);
  dist[static_cast<std::size_t>(source)] = W{0};

  using entry = std::pair<W, V>;  // (f = g + h, vertex)
  std::priority_queue<entry, std::vector<entry>, std::greater<entry>> open;
  open.emplace(h(source), source);

  point_to_point_result<V, W> result;
  while (!open.empty()) {
    auto const [f, v] = open.top();
    open.pop();
    if (settled[static_cast<std::size_t>(v)])
      continue;
    settled[static_cast<std::size_t>(v)] = 1;
    ++result.settled;
    if (v == target)
      break;
    W const d_v = dist[static_cast<std::size_t>(v)];
    for (auto const e : g.get_edges(v)) {
      V const nb = g.get_dest_vertex(e);
      if (settled[static_cast<std::size_t>(nb)])
        continue;
      W const cand = d_v + g.get_edge_weight(e);
      if (cand < dist[static_cast<std::size_t>(nb)]) {
        dist[static_cast<std::size_t>(nb)] = cand;
        parent[static_cast<std::size_t>(nb)] = v;
        open.emplace(cand + h(nb), nb);
      }
    }
  }

  if (dist[static_cast<std::size_t>(target)] == infinity_v<W>)
    return result;
  result.distance = dist[static_cast<std::size_t>(target)];
  for (V v = target; v != invalid_vertex<V>;
       v = parent[static_cast<std::size_t>(v)]) {
    result.path.push_back(v);
    if (v == source)
      break;
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

/// Early-exit Dijkstra (A* with a zero heuristic) — the baseline A* must
/// beat on settled-vertex count when the heuristic is informative.
template <typename G>
point_to_point_result<typename G::vertex_type, typename G::weight_type>
dijkstra_point_to_point(G const& g, typename G::vertex_type source,
                        typename G::vertex_type target) {
  using W = typename G::weight_type;
  return astar(g, source, target,
               [](typename G::vertex_type) { return W{0}; });
}

/// Admissible grid heuristic: scaled Manhattan distance for a rows x cols
/// grid (vertex id = r * cols + c) whose cheapest edge weighs
/// `min_edge_weight`.
template <typename V = vertex_t, typename W = weight_t>
std::function<W(V)> manhattan_heuristic(V cols, V target, W min_edge_weight) {
  V const tr = target / cols;
  V const tc = target % cols;
  return [cols, tr, tc, min_edge_weight](V v) {
    V const r = v / cols;
    V const c = v % cols;
    auto const dr = r > tr ? r - tr : tr - r;
    auto const dc = c > tc ? c - tc : tc - c;
    return static_cast<W>(dr + dc) * min_edge_weight;
  };
}

}  // namespace essentials::algorithms
