#pragma once

/// \file algorithms/personalized_pagerank.hpp
/// \brief Personalized PageRank by forward push (Andersen–Chung–Lang
/// approximate PPR) — a *frontier-driven fixed point*: the frontier holds
/// vertices whose residual exceeds the tolerance, push moves residual mass
/// along out-edges, and the loop converges when no residual is large.
/// The purest demonstration that the paper's four essential components
/// also express local (non-traversal, non-global) algorithms.
///
/// Invariant (tested): p(v) + r(v) mass is conserved — the sum of estimate
/// and residual vectors stays 1.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/filter.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

struct ppr_options {
  double alpha = 0.15;     ///< teleport probability
  double epsilon = 1e-6;   ///< push threshold: push while r(v) > eps * deg(v)
  std::size_t max_pushes = 10'000'000;  ///< safety cap
};

struct ppr_result {
  std::vector<double> estimate;  ///< approximate PPR mass per vertex
  std::vector<double> residual;  ///< unpushed mass (error bound witness)
  std::size_t pushes = 0;
};

/// Forward-push PPR from `source`.  Sequential core (pushes are inherently
/// order-flexible but each push mutates two vertices' residuals; a parallel
/// variant needs atomics on residuals — the serial version is the reference
/// the framework's frontier bookkeeping drives).
template <typename G>
ppr_result personalized_pagerank(G const& g,
                                 typename G::vertex_type source,
                                 ppr_options opt = {}) {
  using V = typename G::vertex_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "personalized_pagerank: source out of range");
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  ppr_result result;
  result.estimate.assign(n, 0.0);
  result.residual.assign(n, 0.0);
  result.residual[static_cast<std::size_t>(source)] = 1.0;

  // Work list of vertices that may violate the push condition.
  frontier::sparse_frontier<V> queue;
  queue.add_vertex(source);
  std::vector<char> queued(n, 0);
  queued[static_cast<std::size_t>(source)] = 1;

  while (!queue.empty() && result.pushes < opt.max_pushes) {
    frontier::sparse_frontier<V> next;
    for (V const v : queue.active()) {
      queued[static_cast<std::size_t>(v)] = 0;
      auto const deg = g.get_out_degree(v);
      double const r = result.residual[static_cast<std::size_t>(v)];
      double const threshold =
          opt.epsilon * std::max<double>(1.0, static_cast<double>(deg));
      if (r <= threshold)
        continue;
      // Push: keep alpha * r locally, spread the rest over out-edges.
      result.estimate[static_cast<std::size_t>(v)] += opt.alpha * r;
      result.residual[static_cast<std::size_t>(v)] = 0.0;
      ++result.pushes;
      if (deg == 0) {
        // Dangling: the non-teleport mass returns to the source (standard
        // lazy handling that conserves total mass).
        result.residual[static_cast<std::size_t>(source)] +=
            (1.0 - opt.alpha) * r;
        if (!queued[static_cast<std::size_t>(source)]) {
          queued[static_cast<std::size_t>(source)] = 1;
          next.add_vertex(source);
        }
        continue;
      }
      double const share = (1.0 - opt.alpha) * r / static_cast<double>(deg);
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        result.residual[static_cast<std::size_t>(nb)] += share;
        auto const nb_deg = g.get_out_degree(nb);
        if (result.residual[static_cast<std::size_t>(nb)] >
                opt.epsilon *
                    std::max<double>(1.0, static_cast<double>(nb_deg)) &&
            !queued[static_cast<std::size_t>(nb)]) {
          queued[static_cast<std::size_t>(nb)] = 1;
          next.add_vertex(nb);
        }
      }
      // v itself may violate again only via self-loops/dangling return;
      // the next queue covers it through the neighbor path above.
    }
    swap(queue, next);
  }
  return result;
}

}  // namespace essentials::algorithms
