#pragma once

/// \file algorithms/incremental.hpp
/// \brief Incremental (delta-seeded, warm-start) enactors for the monotone
/// algorithms: SSSP, BFS and connected components.
///
/// The observation (GraphLab; McCune et al.'s TLAV survey; Maiter's
/// delta-accumulation): for *monotone* label-correcting vertex programs, a
/// previous epoch's converged result remains a valid set of upper bounds
/// after edges are **inserted** (or weights decreased), because more edges
/// can only improve distances/depths/labels.  Re-enacting Listing 4 from a
/// full source frontier re-derives everything; seeding the frontier from
/// the delta's source endpoints instead re-derives only the cone the new
/// edges actually improve — usually a few supersteps over a few vertices.
///
/// Correctness argument (the reason warm results are bit-identical to
/// cold): seed the frontier with every delta-record source endpoint whose
/// previous label is finite, then run the *unchanged* relaxation against
/// the *new* snapshot.  At convergence no edge out of any improved-or-
/// seeded vertex improves anything; edges out of never-improved vertices
/// were stable in the old graph, and new edges out of unreached vertices
/// cannot relax (their source becomes finite only by improving — which
/// puts it on the frontier, where all its out-edges, including the new
/// ones, get relaxed).  Stability plus valid upper bounds pins the unique
/// fixed point — the same one the cold enactment reaches, including
/// float-for-float for SSSP (both runs minimize over the same set of
/// left-folded path sums).
///
/// Spurious delta records (superset semantics, graph/delta.hpp) only seed
/// extra vertices whose relaxations fail — wasted work, never wrong
/// results.  Record weights are advisory and deliberately *unused* here:
/// relaxation always reads the snapshot's authoritative weights.
///
/// Deletions, in-place weight increases and truncated logs break the
/// upper-bound property; each enactor detects this (`insert_only()` /
/// `complete`) and transparently falls back to the cold algorithm.  The
/// `incremental_outcome` out-param reports which path ran, so the engine
/// can count warm-start hits vs delta fallbacks (telemetry schema v4).
///
/// Note on `iterations` and BFS parents: a warm-started result converges
/// in fewer supersteps, so the result's `iterations` field differs from a
/// cold run's — "bit-identical" covers the *payload* (distances / depths /
/// labels).  Warm BFS maintains (depth, parent) in one packed 64-bit CAS,
/// yielding exact depths and *a* valid BFS tree (the same contract as the
/// cold parallel claim-based BFS, whose parents are also run-dependent).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/sssp.hpp"
#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/filter.hpp"
#include "core/types.hpp"
#include "graph/delta.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// How an incremental enactment went: which path ran and what it saved.
struct incremental_outcome {
  bool warm_started = false;  ///< false ⇒ fell back to the cold algorithm
  std::size_t delta_edges = 0;       ///< compacted delta records consumed
  std::size_t supersteps = 0;        ///< supersteps the chosen path took
  std::size_t supersteps_saved = 0;  ///< prev cold supersteps minus ours
};

namespace detail {

/// Deduplicated seed frontier from delta-record source endpoints that pass
/// `viable` (typically "previous label is finite").
template <typename V, typename W, typename ViableF>
std::vector<V> delta_seeds(graph::edge_delta_t<V, W> const& delta,
                           std::size_t n, bool both_endpoints,
                           ViableF viable) {
  std::vector<V> seeds;
  seeds.reserve(delta.records.size() * (both_endpoints ? 2 : 1));
  auto const consider = [&](V v) {
    if (v >= 0 && static_cast<std::size_t>(v) < n && viable(v))
      seeds.push_back(v);
  };
  for (auto const& r : delta.records) {
    consider(r.src);
    if (both_endpoints)
      consider(r.dst);
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());
  return seeds;
}

inline void note_outcome(incremental_outcome* out, bool warm,
                         std::size_t delta_edges, std::size_t supersteps,
                         std::size_t prev_supersteps) {
  if (!out)
    return;
  out->warm_started = warm;
  out->delta_edges = delta_edges;
  out->supersteps = supersteps;
  out->supersteps_saved =
      warm && prev_supersteps > supersteps ? prev_supersteps - supersteps : 0;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

/// Incremental SSSP: previous epoch's converged distances + the edge delta
/// leading to this snapshot ⇒ the new epoch's distances, bit-identical to
/// `sssp(policy, g, source)` from scratch.  Falls back to the cold
/// enactment on deletions / weight increases / truncated logs.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
sssp_result<typename G::weight_type> sssp_incremental(
    P policy, G const& g, typename G::vertex_type source,
    sssp_result<typename G::weight_type> const& prev,
    graph::edge_delta_t<typename G::vertex_type,
                        typename G::weight_type> const& delta,
    incremental_outcome* outcome = nullptr) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());

  bool const warmable =
      delta.complete && delta.insert_only() && prev.distances.size() == n &&
      source >= 0 && static_cast<std::size_t>(source) < n &&
      prev.distances[static_cast<std::size_t>(source)] == W{0};
  if (!warmable) {
    auto cold = sssp(policy, g, source);
    detail::note_outcome(outcome, false, delta.size(), cold.iterations,
                         prev.iterations);
    return cold;
  }

  sssp_result<W> result;
  result.distances = prev.distances;  // valid upper bounds after inserts
  W* const dist = result.distances.data();

  frontier::sparse_frontier<V> f(detail::delta_seeds(
      delta, n, /*both_endpoints=*/false,
      [dist](V v) { return dist[v] != infinity_v<W>; }));

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::sparse_frontier<V> in, std::size_t /*iteration*/) {
        // Listing 4's relaxation, unchanged — only the seed differs.  The
        // source read goes through atomic::load because this suite runs in
        // the TSAN matrix: dist[src] may be concurrently improved by a
        // relaxation racing on the same word (a stale read only costs a
        // re-relaxation, never correctness).
        auto out = operators::neighbors_expand(
            policy, g, in,
            [dist](V const src, V const dst, E const /*edge*/,
                   W const weight) {
              W const new_d = atomic::load(&dist[src]) + weight;
              W const curr_d = atomic::min(&dist[dst], new_d);
              return new_d < curr_d;
            });
        if constexpr (std::decay_t<P>::is_parallel)
          operators::uniquify(policy, out, n);
        else
          operators::uniquify(policy, out);
        return out;
      },
      enactor::frontier_empty{});
  result.iterations = stats.iterations;
  detail::note_outcome(outcome, true, delta.size(), stats.iterations,
                       prev.iterations);
  return result;
}

// ---------------------------------------------------------------------------
// BFS
// ---------------------------------------------------------------------------

/// Incremental BFS (unit-weight SSSP on the hop lattice).  Depths are
/// bit-identical to a cold `bfs`; parents form a valid BFS tree (kept
/// consistent with depths through a packed 64-bit depth|parent CAS, so a
/// parent's converged depth is always exactly one less than its child's).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
bfs_result<typename G::vertex_type> bfs_incremental(
    P policy, G const& g, typename G::vertex_type source,
    bfs_result<typename G::vertex_type> const& prev,
    graph::edge_delta_t<typename G::vertex_type,
                        typename G::weight_type> const& delta,
    incremental_outcome* outcome = nullptr) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  static_assert(sizeof(V) <= sizeof(std::uint32_t),
                "bfs_incremental packs (depth, parent) into one u64 word");
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());

  bool const warmable =
      delta.complete && delta.insert_only() && prev.depths.size() == n &&
      prev.parents.size() == n && source >= 0 &&
      static_cast<std::size_t>(source) < n &&
      prev.depths[static_cast<std::size_t>(source)] == V{0};
  if (!warmable) {
    auto cold = bfs(policy, g, source);
    detail::note_outcome(outcome, false, delta.size(), cold.iterations,
                         prev.iterations);
    return cold;
  }

  constexpr std::uint32_t kUnset = 0xffffffffu;  // depth/parent sentinel
  auto const pack = [](std::uint32_t depth, std::uint32_t parent) {
    return (static_cast<std::uint64_t>(depth) << 32) | parent;
  };
  auto const depth_of = [](std::uint64_t word) {
    return static_cast<std::uint32_t>(word >> 32);
  };

  std::vector<std::uint64_t> words(n);
  for (std::size_t v = 0; v < n; ++v) {
    V const d = prev.depths[v];
    V const p = prev.parents[v];
    words[v] = pack(d == V{-1} ? kUnset : static_cast<std::uint32_t>(d),
                    p == V{-1} ? kUnset : static_cast<std::uint32_t>(p));
  }
  std::uint64_t* const w = words.data();

  frontier::sparse_frontier<V> f(detail::delta_seeds(
      delta, n, /*both_endpoints=*/false, [&prev](V v) {
        return prev.depths[static_cast<std::size_t>(v)] != V{-1};
      }));

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::sparse_frontier<V> in, std::size_t /*iteration*/) {
        auto out = operators::neighbors_expand(
            policy, g, in,
            [w, depth_of, pack](V const src, V const dst, E const /*e*/,
                                W const /*weight*/) {
              std::uint32_t const ds = depth_of(atomic::load(&w[src]));
              if (ds == kUnset)
                return false;
              std::uint32_t const nd = ds + 1;
              std::uint64_t cur = atomic::load(&w[dst]);
              while (nd < depth_of(cur)) {
                std::uint64_t const observed = atomic::cas(
                    &w[dst], cur,
                    pack(nd, static_cast<std::uint32_t>(src)));
                if (observed == cur)
                  return true;  // we improved (depth, parent) atomically
                cur = observed;
              }
              return false;
            });
        if constexpr (std::decay_t<P>::is_parallel)
          operators::uniquify(policy, out, n);
        else
          operators::uniquify(policy, out);
        return out;
      },
      enactor::frontier_empty{});

  bfs_result<V> result;
  result.depths.resize(n);
  result.parents.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::uint32_t const d = depth_of(words[v]);
    std::uint32_t const p = static_cast<std::uint32_t>(words[v]);
    result.depths[v] = d == kUnset ? V{-1} : static_cast<V>(d);
    result.parents[v] = p == kUnset ? V{-1} : static_cast<V>(p);
  }
  result.iterations = stats.iterations;
  detail::note_outcome(outcome, true, delta.size(), stats.iterations,
                       prev.iterations);
  return result;
}

// ---------------------------------------------------------------------------
// Connected components
// ---------------------------------------------------------------------------

/// Incremental CC (label propagation; undirected semantics — run on a
/// symmetrized graph, like the cold variant).  Inserts only merge
/// components, so the previous labels are valid upper bounds and seeding
/// both endpoints of every delta edge floods the smaller label through the
/// merged component.  Labels are bit-identical to the cold fixed point
/// (min vertex id per component).  Deletions can split components —
/// fallback.  Weight-only changes also route through the conservative
/// `remove` marking and fall back, although CC ignores weights; that
/// pessimism costs a cold run, never correctness.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
cc_result<typename G::vertex_type> connected_components_incremental(
    P policy, G const& g,
    cc_result<typename G::vertex_type> const& prev,
    graph::edge_delta_t<typename G::vertex_type,
                        typename G::weight_type> const& delta,
    incremental_outcome* outcome = nullptr) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());

  bool const warmable =
      delta.complete && delta.insert_only() && prev.labels.size() == n;
  if (!warmable) {
    auto cold = connected_components(policy, g);
    detail::note_outcome(outcome, false, delta.size(), cold.iterations,
                         prev.iterations);
    return cold;
  }

  cc_result<V> result;
  result.labels = prev.labels;
  V* const labels = result.labels.data();

  frontier::sparse_frontier<V> f(detail::delta_seeds(
      delta, n, /*both_endpoints=*/true, [](V) { return true; }));

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::sparse_frontier<V> in, std::size_t /*iteration*/) {
        auto out = operators::neighbors_expand(
            policy, g, in,
            [labels](V const src, V const dst, E const /*e*/, W const) {
              V const l = atomic::load(&labels[src]);
              return l < atomic::min(&labels[dst], l);
            });
        if constexpr (std::decay_t<P>::is_parallel)
          operators::uniquify(policy, out, n);
        else
          operators::uniquify(policy, out);
        return out;
      },
      enactor::frontier_empty{});

  result.iterations = stats.iterations;
  result.num_components = detail::count_components(result.labels);
  detail::note_outcome(outcome, true, delta.size(), stats.iterations,
                       prev.iterations);
  return result;
}

}  // namespace essentials::algorithms
