#pragma once

/// \file algorithms/scc.hpp
/// \brief Strongly connected components: the parallel forward–backward
/// (FW–BW) algorithm with trimming, built from the framework's push and
/// pull traversals, plus Tarjan's serial algorithm as the oracle.
///
/// FW–BW is the canonical "composed traversals" algorithm: pick a pivot,
/// compute its forward reachable set with a push BFS (CSR) and its backward
/// reachable set with the same BFS over the transposed structure (CSC) —
/// the intersection is the pivot's SCC; recurse on the three remainders.
/// Trimming peels size-1 SCCs (in/out degree 0 within the active set)
/// first, which collapses the long tail real graphs have.  The recursion
/// is managed as an explicit work list of vertex partitions.

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/types.hpp"
#include "parallel/atomic_bitset.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct scc_result {
  std::vector<V> component;  ///< component[v] == component[u] iff same SCC
  std::size_t num_components = 0;
};

namespace detail {

/// BFS-reachable subset of `active` starting from `pivot`, following
/// out-edges when `forward`, in-edges otherwise.  `active` is a membership
/// mask limiting the traversal to the current partition.
template <typename G, typename V>
std::vector<char> reach_within(G const& g, V pivot,
                               std::vector<char> const& active,
                               bool forward) {
  std::vector<char> seen(active.size(), 0);
  seen[static_cast<std::size_t>(pivot)] = 1;
  std::vector<V> stack{pivot};
  while (!stack.empty()) {
    V const u = stack.back();
    stack.pop_back();
    if (forward) {
      for (auto const e : g.get_edges(u)) {
        V const v = g.get_dest_vertex(e);
        if (active[static_cast<std::size_t>(v)] &&
            !seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          stack.push_back(v);
        }
      }
    } else {
      for (auto const e : g.get_in_edges(u)) {
        V const v = g.get_in_source_vertex(e);
        if (active[static_cast<std::size_t>(v)] &&
            !seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          stack.push_back(v);
        }
      }
    }
  }
  return seen;
}

}  // namespace detail

/// Parallel-structured FW–BW–Trim SCC.  Requires CSR + CSC views.  The
/// per-partition reachability sweeps run serially here (partitions are
/// independent, trimming is the parallel-friendly part); the algorithmic
/// structure matches the GPU formulation.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csr && G::has_csc)
scc_result<typename G::vertex_type> strongly_connected_components(
    P policy, G const& g) {
  using V = typename G::vertex_type;
  (void)policy;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  scc_result<V> result;
  result.component.assign(n, invalid_vertex<V>);
  V next_label = 0;

  // Work list of partitions, each a membership mask.  Start with all
  // vertices.
  std::vector<std::vector<char>> worklist;
  worklist.emplace_back(n, 1);

  while (!worklist.empty()) {
    std::vector<char> active = std::move(worklist.back());
    worklist.pop_back();

    // --- Trim: repeatedly peel vertices with no in- or out-neighbors
    // inside the partition; each is its own SCC.
    bool trimmed = true;
    while (trimmed) {
      trimmed = false;
      for (std::size_t v = 0; v < n; ++v) {
        if (!active[v])
          continue;
        bool has_in = false, has_out = false;
        for (auto const e : g.get_edges(static_cast<V>(v))) {
          V const dst = g.get_dest_vertex(e);
          if (active[static_cast<std::size_t>(dst)] &&
              dst != static_cast<V>(v)) {
            has_out = true;
            break;
          }
        }
        if (has_out) {
          for (auto const e : g.get_in_edges(static_cast<V>(v))) {
            V const src = g.get_in_source_vertex(e);
            if (active[static_cast<std::size_t>(src)] &&
                src != static_cast<V>(v)) {
              has_in = true;
              break;
            }
          }
        }
        if (!has_in || !has_out) {
          result.component[v] = next_label++;
          active[v] = 0;
          trimmed = true;
        }
      }
    }

    // Find a pivot.
    V pivot = invalid_vertex<V>;
    for (std::size_t v = 0; v < n; ++v) {
      if (active[v]) {
        pivot = static_cast<V>(v);
        break;
      }
    }
    if (pivot == invalid_vertex<V>)
      continue;  // partition fully trimmed

    // --- FW and BW reachability within the partition.
    auto const fw = detail::reach_within(g, pivot, active, /*forward=*/true);
    auto const bw = detail::reach_within(g, pivot, active, /*forward=*/false);

    // SCC(pivot) = FW ∩ BW; split the rest into three partitions.
    std::vector<char> fw_only(n, 0), bw_only(n, 0), rest(n, 0);
    bool any_fw = false, any_bw = false, any_rest = false;
    V const label = next_label++;
    for (std::size_t v = 0; v < n; ++v) {
      if (!active[v])
        continue;
      if (fw[v] && bw[v]) {
        result.component[v] = label;
      } else if (fw[v]) {
        fw_only[v] = 1;
        any_fw = true;
      } else if (bw[v]) {
        bw_only[v] = 1;
        any_bw = true;
      } else {
        rest[v] = 1;
        any_rest = true;
      }
    }
    if (any_fw)
      worklist.push_back(std::move(fw_only));
    if (any_bw)
      worklist.push_back(std::move(bw_only));
    if (any_rest)
      worklist.push_back(std::move(rest));
  }

  result.num_components = static_cast<std::size_t>(next_label);
  return result;
}

/// Tarjan's algorithm (iterative, explicit stack) — the serial oracle.
template <typename G>
scc_result<typename G::vertex_type> strongly_connected_components_serial(
    G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  scc_result<V> result;
  result.component.assign(n, invalid_vertex<V>);

  std::vector<V> index(n, invalid_vertex<V>), lowlink(n, 0);
  std::vector<char> on_stack(n, 0);
  std::vector<V> stack;
  V next_index = 0;
  V next_label = 0;

  using edge_iter_t =
      decltype(std::declval<G const&>().get_edges(V{}).begin());
  struct frame_t {
    V vertex;
    edge_iter_t edge, end;
  };
  std::vector<frame_t> call_stack;

  for (V root = 0; root < g.get_num_vertices(); ++root) {
    if (index[static_cast<std::size_t>(root)] != invalid_vertex<V>)
      continue;
    auto const root_edges = g.get_edges(root);
    call_stack.push_back({root, root_edges.begin(), root_edges.end()});
    index[static_cast<std::size_t>(root)] =
        lowlink[static_cast<std::size_t>(root)] = next_index++;
    stack.push_back(root);
    on_stack[static_cast<std::size_t>(root)] = 1;

    while (!call_stack.empty()) {
      auto& frame = call_stack.back();
      V const v = frame.vertex;
      if (frame.edge != frame.end) {
        V const w = g.get_dest_vertex(*frame.edge);
        ++frame.edge;
        if (index[static_cast<std::size_t>(w)] == invalid_vertex<V>) {
          auto const w_edges = g.get_edges(w);
          call_stack.push_back({w, w_edges.begin(), w_edges.end()});
          index[static_cast<std::size_t>(w)] =
              lowlink[static_cast<std::size_t>(w)] = next_index++;
          stack.push_back(w);
          on_stack[static_cast<std::size_t>(w)] = 1;
        } else if (on_stack[static_cast<std::size_t>(w)]) {
          lowlink[static_cast<std::size_t>(v)] =
              std::min(lowlink[static_cast<std::size_t>(v)],
                       index[static_cast<std::size_t>(w)]);
        }
      } else {
        if (lowlink[static_cast<std::size_t>(v)] ==
            index[static_cast<std::size_t>(v)]) {
          for (;;) {
            V const w = stack.back();
            stack.pop_back();
            on_stack[static_cast<std::size_t>(w)] = 0;
            result.component[static_cast<std::size_t>(w)] = next_label;
            if (w == v)
              break;
          }
          ++next_label;
        }
        call_stack.pop_back();
        if (!call_stack.empty()) {
          V const parent = call_stack.back().vertex;
          lowlink[static_cast<std::size_t>(parent)] =
              std::min(lowlink[static_cast<std::size_t>(parent)],
                       lowlink[static_cast<std::size_t>(v)]);
        }
      }
    }
  }
  result.num_components = static_cast<std::size_t>(next_label);
  return result;
}

}  // namespace essentials::algorithms
