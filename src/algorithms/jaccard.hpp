#pragma once

/// \file algorithms/jaccard.hpp
/// \brief Jaccard similarity — neighborhood overlap scoring for link
/// prediction and recommendation: J(u, v) = |N(u) ∩ N(v)| / |N(u) ∪ N(v)|.
/// Edge-parallel over existing edges (similarity of endpoints) or over a
/// candidate pair list (scoring potential links).
///
/// Input: undirected, deduplicated graph with sorted adjacency.

#include <algorithm>
#include <cstddef>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/for_each.hpp"

namespace essentials::algorithms {

namespace detail {

/// |N(u) ∩ N(v)| over sorted adjacencies, excluding u and v themselves.
template <typename G>
std::size_t common_neighbors(G const& g, typename G::vertex_type u,
                             typename G::vertex_type v) {
  using V = typename G::vertex_type;
  auto const ue = g.get_edges(u);
  auto const ve = g.get_edges(v);
  auto ui = ue.begin();
  auto vi = ve.begin();
  std::size_t count = 0;
  while (ui != ue.end() && vi != ve.end()) {
    V const a = g.get_dest_vertex(*ui);
    V const b = g.get_dest_vertex(*vi);
    if (a == u || a == v) {
      ++ui;
      continue;
    }
    if (b == u || b == v) {
      ++vi;
      continue;
    }
    if (a == b) {
      ++count;
      ++ui;
      ++vi;
    } else if (a < b) {
      ++ui;
    } else {
      ++vi;
    }
  }
  return count;
}

}  // namespace detail

/// Jaccard coefficient of one vertex pair.
template <typename G>
double jaccard_similarity(G const& g, typename G::vertex_type u,
                          typename G::vertex_type v) {
  std::size_t const common = detail::common_neighbors(g, u, v);
  // |A ∪ B| = |A| + |B| - |A ∩ B|, with u/v themselves excluded from each
  // other's neighborhoods for the standard link-prediction convention.
  std::size_t du = 0, dv = 0;
  for (auto const e : g.get_edges(u)) {
    auto const n = g.get_dest_vertex(e);
    du += (n != u && n != v);
  }
  for (auto const e : g.get_edges(v)) {
    auto const n = g.get_dest_vertex(e);
    dv += (n != u && n != v);
  }
  std::size_t const uni = du + dv - common;
  return uni == 0 ? 0.0
                  : static_cast<double>(common) / static_cast<double>(uni);
}

/// Jaccard score of every existing edge (endpoint-neighborhood overlap):
/// returned in CSR edge order.  High scores flag intra-community ties.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
std::vector<double> jaccard_edge_scores(P policy, G const& g) {
  std::size_t const m = static_cast<std::size_t>(g.get_num_edges());
  std::vector<double> scores(m, 0.0);
  auto const body = [&](std::size_t ei) {
    auto const e = static_cast<typename G::edge_type>(ei);
    scores[ei] = jaccard_similarity(g, g.get_source_vertex(e),
                                    g.get_dest_vertex(e));
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::parallel_for(policy.pool(), std::size_t{0}, m, body,
                           policy.grain);
  } else {
    for (std::size_t ei = 0; ei < m; ++ei)
      body(ei);
  }
  return scores;
}

/// Score a candidate pair list (link prediction): returns one score per
/// pair, in order.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
std::vector<double> jaccard_link_scores(
    P policy, G const& g,
    std::vector<std::pair<typename G::vertex_type,
                          typename G::vertex_type>> const& pairs) {
  std::vector<double> scores(pairs.size(), 0.0);
  auto const body = [&](std::size_t i) {
    scores[i] = jaccard_similarity(g, pairs[i].first, pairs[i].second);
  };
  if constexpr (std::decay_t<P>::is_parallel) {
    parallel::parallel_for(policy.pool(), std::size_t{0}, pairs.size(), body,
                           /*grain=*/16);
  } else {
    for (std::size_t i = 0; i < pairs.size(); ++i)
      body(i);
  }
  return scores;
}

}  // namespace essentials::algorithms
