#pragma once

/// \file algorithms/triangle_counting.hpp
/// \brief Triangle counting on undirected graphs (symmetrized, deduplicated
/// CSR) via sorted-adjacency intersection, in parallel and serial forms.
///
/// The operator view: an edge-centric *transform + reduce* — for every edge
/// (u, v) with u < v, count common neighbors w > v.  Orienting the count by
/// vertex order means each triangle {u < v < w} is counted exactly once, at
/// its lowest edge.

#include <algorithm>
#include <cstddef>
#include <cstdint>

#include "core/execution.hpp"
#include "core/operators/reduce.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

namespace detail {

/// Count neighbors common to u's and v's adjacency, both restricted to ids
/// greater than v (sorted-merge intersection).  Requires sorted adjacency —
/// guaranteed by from_coo's canonical ordering.
template <typename G>
std::size_t intersect_above(G const& g, typename G::vertex_type u,
                            typename G::vertex_type v) {
  using V = typename G::vertex_type;
  auto const ue = g.get_edges(u);
  auto const ve = g.get_edges(v);
  auto ui = ue.begin();
  auto vi = ve.begin();
  std::size_t count = 0;
  while (ui != ue.end() && vi != ve.end()) {
    V const a = g.get_dest_vertex(*ui);
    V const b = g.get_dest_vertex(*vi);
    if (a <= v) {
      ++ui;
      continue;
    }
    if (b <= v) {
      ++vi;
      continue;
    }
    if (a == b) {
      ++count;
      ++ui;
      ++vi;
    } else if (a < b) {
      ++ui;
    } else {
      ++vi;
    }
  }
  return count;
}

}  // namespace detail

/// Total triangle count.  The graph must be undirected (symmetric CSR) with
/// no self loops or duplicate edges.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
std::uint64_t triangle_count(P policy, G const& g) {
  using V = typename G::vertex_type;
  return operators::reduce_vertices(
      policy, g, std::uint64_t{0},
      [&g](V u) {
        std::uint64_t local = 0;
        for (auto const e : g.get_edges(u)) {
          V const v = g.get_dest_vertex(e);
          if (v > u)  // orient: count each triangle at its smallest vertex
            local += detail::intersect_above(g, u, v);
        }
        return local;
      },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
}

/// Serial oracle: brute-force check of all ordered neighbor pairs.  O(V *
/// d_max^2) — for test graphs only.
template <typename G>
std::uint64_t triangle_count_serial(G const& g) {
  using V = typename G::vertex_type;
  std::uint64_t total = 0;
  for (V u = 0; u < g.get_num_vertices(); ++u) {
    for (auto const e1 : g.get_edges(u)) {
      V const v = g.get_dest_vertex(e1);
      if (v <= u)
        continue;
      for (auto const e2 : g.get_edges(v)) {
        V const w = g.get_dest_vertex(e2);
        if (w <= v)
          continue;
        // Does edge (u, w) exist?  Binary search over u's sorted adjacency.
        auto const ue = g.get_edges(u);
        auto lo = ue.begin();
        auto hi = ue.end();
        bool found = false;
        while (lo != hi) {
          auto mid = lo;
          std::size_t const half =
              static_cast<std::size_t>(std::distance(lo, hi)) / 2;
          std::advance(mid, half);
          V const c = g.get_dest_vertex(*mid);
          if (c == w) {
            found = true;
            break;
          }
          if (c < w)
            lo = ++mid;
          else
            hi = mid;
        }
        if (found)
          ++total;
      }
    }
  }
  return total;
}

}  // namespace essentials::algorithms
