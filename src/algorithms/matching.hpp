#pragma once

/// \file algorithms/matching.hpp
/// \brief Maximal matching on undirected graphs: parallel handshake
/// matching (each round, mutually-proposing vertex pairs match — a
/// symmetric variant of Luby's scheme) and the serial greedy oracle.
///
/// The maximal-matching property (no two matched edges share an endpoint;
/// no unmatched edge has both endpoints free) is what tests assert; the
/// matching itself differs between variants.

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "generators/random.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct matching_result {
  std::vector<V> mate;  ///< mate[v] = matched partner, invalid_vertex if free
  std::size_t num_matched_edges = 0;
  std::size_t rounds = 0;
};

/// Handshake matching: every free vertex points at its smallest-priority
/// free neighbor; mutual pointers match.  Expected O(log n) rounds.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
matching_result<typename G::vertex_type> maximal_matching(
    P policy, G const& g, std::uint64_t seed = 1) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  matching_result<V> result;
  result.mate.assign(n, invalid_vertex<V>);
  V* const mate = result.mate.data();

  std::vector<std::uint64_t> priority(n);
  generators::rng_t rng(seed);
  for (auto& p : priority)
    p = rng.next_u64();

  std::vector<V> proposal(n, invalid_vertex<V>);
  V* const prop = proposal.data();

  bool progress = true;
  while (progress) {
    progress = false;
    frontier::sparse_frontier<V> free_vertices;
    for (std::size_t v = 0; v < n; ++v)
      if (mate[v] == invalid_vertex<V>)
        free_vertices.active().push_back(static_cast<V>(v));

    // Phase 1: each free vertex proposes to its best free neighbor
    // (lowest priority value; ties by id).
    operators::compute(policy, free_vertices, [&](V v) {
      V best = invalid_vertex<V>;
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        if (nb == v || mate[nb] != invalid_vertex<V>)
          continue;
        if (best == invalid_vertex<V> ||
            priority[static_cast<std::size_t>(nb)] <
                priority[static_cast<std::size_t>(best)] ||
            (priority[static_cast<std::size_t>(nb)] ==
                 priority[static_cast<std::size_t>(best)] &&
             nb < best))
          best = nb;
      }
      prop[v] = best;
    });

    // Phase 2: mutual proposals match.  Both sides compute the same
    // predicate, so the writes agree without synchronization.
    std::vector<char> matched_now(n, 0);
    char* const hit = matched_now.data();
    operators::compute(policy, free_vertices, [&](V v) {
      V const p = prop[v];
      if (p != invalid_vertex<V> && prop[static_cast<std::size_t>(p)] == v) {
        mate[v] = p;
        hit[v] = 1;
      }
    });
    for (std::size_t v = 0; v < n; ++v) {
      if (hit[v]) {
        progress = true;
        if (static_cast<V>(v) < mate[v])
          ++result.num_matched_edges;
      }
    }
    ++result.rounds;
    if (!progress)
      break;
  }
  return result;
}

/// Serial greedy matching in edge order — the oracle for maximality.
template <typename G>
matching_result<typename G::vertex_type> maximal_matching_serial(G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  matching_result<V> result;
  result.mate.assign(n, invalid_vertex<V>);
  for (V u = 0; u < g.get_num_vertices(); ++u) {
    if (result.mate[static_cast<std::size_t>(u)] != invalid_vertex<V>)
      continue;
    for (auto const e : g.get_edges(u)) {
      V const v = g.get_dest_vertex(e);
      if (v != u &&
          result.mate[static_cast<std::size_t>(v)] == invalid_vertex<V>) {
        result.mate[static_cast<std::size_t>(u)] = v;
        result.mate[static_cast<std::size_t>(v)] = u;
        ++result.num_matched_edges;
        break;
      }
    }
  }
  result.rounds = 1;
  return result;
}

/// Validity: mates are symmetric and adjacent (matching), and no edge has
/// two free endpoints (maximality).
template <typename G, typename V>
bool is_valid_maximal_matching(G const& g, std::vector<V> const& mate) {
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    V const m = mate[static_cast<std::size_t>(v)];
    if (m != invalid_vertex<V>) {
      if (mate[static_cast<std::size_t>(m)] != v)
        return false;  // asymmetric
      bool adjacent = false;
      for (auto const e : g.get_edges(v))
        adjacent |= (g.get_dest_vertex(e) == m);
      if (!adjacent)
        return false;
    }
  }
  for (V u = 0; u < g.get_num_vertices(); ++u) {
    if (mate[static_cast<std::size_t>(u)] != invalid_vertex<V>)
      continue;
    for (auto const e : g.get_edges(u)) {
      V const v = g.get_dest_vertex(e);
      if (v != u && mate[static_cast<std::size_t>(v)] == invalid_vertex<V>)
        return false;  // u-v could still be matched
    }
  }
  return true;
}

}  // namespace essentials::algorithms
