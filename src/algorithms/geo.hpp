#pragma once

/// \file algorithms/geo.hpp
/// \brief Geolocation inference ("geo", a Gunrock/essentials application):
/// given a graph where some vertices have known coordinates, predict the
/// rest by iteratively placing each unknown vertex at the spatial median
/// (approximated by the component-wise mean direction on the sphere) of
/// its located neighbors, until everyone reachable from a labeled vertex
/// is placed.
///
/// Another fixed-point vertex program: the "frontier" is implicit (every
/// unlabeled vertex with >= 1 located neighbor updates), convergence is
/// "no vertex newly located AND positions stable within tolerance".

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/operators/reduce.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

struct geo_point {
  double latitude = 0.0;   ///< degrees
  double longitude = 0.0;  ///< degrees
  bool located = false;
};

struct geo_options {
  std::size_t max_iterations = 50;
  double tolerance_degrees = 1e-7;  ///< movement threshold for convergence
};

struct geo_result {
  std::vector<geo_point> positions;
  std::size_t located = 0;
  std::size_t iterations = 0;
};

/// Great-circle distance in kilometres (haversine).
inline double haversine_km(geo_point const& a, geo_point const& b) {
  constexpr double kEarthRadiusKm = 6371.0;
  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  double const lat1 = a.latitude * kDegToRad;
  double const lat2 = b.latitude * kDegToRad;
  double const dlat = (b.latitude - a.latitude) * kDegToRad;
  double const dlon = (b.longitude - a.longitude) * kDegToRad;
  double const h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

/// Spherical mean of located neighbors (3-D unit-vector average) — robust
/// across the antimeridian, unlike naive lat/long averaging.
namespace detail {

inline geo_point spherical_mean(double x, double y, double z) {
  constexpr double kRadToDeg = 180.0 / 3.14159265358979323846;
  double const norm = std::sqrt(x * x + y * y + z * z);
  geo_point p;
  if (norm < 1e-12)
    return p;  // antipodal cancellation: stay unlocated
  x /= norm;
  y /= norm;
  z /= norm;
  p.latitude = std::asin(z) * kRadToDeg;
  p.longitude = std::atan2(y, x) * kRadToDeg;
  p.located = true;
  return p;
}

}  // namespace detail

/// Iterative geolocation.  `seeds` gives known positions (located==true
/// entries are fixed and never move).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
geo_result geolocate(P policy, G const& g, std::vector<geo_point> seeds,
                     geo_options opt = {}) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  expects(seeds.size() == n, "geolocate: seed vector size mismatch");
  geo_result result;
  result.positions = std::move(seeds);
  std::vector<geo_point> next(result.positions);

  constexpr double kDegToRad = 3.14159265358979323846 / 180.0;
  std::vector<char> fixed(n, 0);
  for (std::size_t v = 0; v < n; ++v)
    fixed[v] = result.positions[v].located ? 1 : 0;

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    geo_point const* const cur = result.positions.data();
    geo_point* const nxt = next.data();
    char const* const anchored = fixed.data();
    operators::compute_vertices(policy, g, [&g, cur, nxt, anchored,
                                            kDegToRad](V v) {
      if (anchored[v]) {
        nxt[v] = cur[v];
        return;
      }
      double x = 0, y = 0, z = 0;
      std::size_t located_neighbors = 0;
      for (auto const e : g.get_edges(v)) {
        auto const& p = cur[static_cast<std::size_t>(g.get_dest_vertex(e))];
        if (!p.located)
          continue;
        double const lat = p.latitude * kDegToRad;
        double const lon = p.longitude * kDegToRad;
        x += std::cos(lat) * std::cos(lon);
        y += std::cos(lat) * std::sin(lon);
        z += std::sin(lat);
        ++located_neighbors;
      }
      nxt[v] = located_neighbors == 0 ? cur[v]
                                      : detail::spherical_mean(x, y, z);
    });

    // Convergence: largest coordinate movement + newly-located count.
    double const moved = operators::reduce_vertices(
        policy, g, 0.0,
        [cur, nxt](V v) {
          if (!cur[v].located || !nxt[v].located)
            return cur[v].located != nxt[v].located ? 1.0 : 0.0;
          return std::max(std::abs(cur[v].latitude - nxt[v].latitude),
                          std::abs(cur[v].longitude - nxt[v].longitude));
        },
        [](double a, double b) { return a > b ? a : b; });

    result.positions.swap(next);
    ++result.iterations;
    if (moved < opt.tolerance_degrees)
      break;
  }

  for (auto const& p : result.positions)
    result.located += p.located;
  return result;
}

}  // namespace essentials::algorithms
