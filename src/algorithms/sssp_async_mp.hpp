#pragma once

/// \file algorithms/sssp_async_mp.hpp
/// \brief Fully asynchronous message-passing SSSP — the paper's §III-B
/// punchline combination: "an asynchronous execution model with
/// message-passing to communicate the active working set can be more
/// efficient [than BSP]".  No supersteps, no barriers, no all-reduce:
/// ranks process their local work queues continuously, relaxations of
/// remote vertices fly as messages the moment they happen, and global
/// termination is detected with **Safra's token algorithm** (the classic
/// distributed termination detector: a colored token circulates the ring
/// accumulating each rank's sent-minus-received message count; a white
/// token returning to the initiator with total zero proves quiescence).
///
/// This is the "Timing = Asynchronous ∧ Communication = Message Passing"
/// cell of Table I exercised *jointly* (the BSP message-passing and the
/// shared-memory async variants each exercise one axis at a time).

#include <cstdint>
#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "algorithms/relax.hpp"
#include "algorithms/sssp.hpp"
#include "core/types.hpp"
#include "mpsim/communicator.hpp"

namespace essentials::algorithms {

/// Asynchronous message-passing SSSP over `num_ranks` mpsim ranks.
/// Vertices are owned per `owner` (default v mod P); each rank runs a
/// continuous relax-and-forward loop with no synchronization points.
template <typename G>
sssp_result<typename G::weight_type> sssp_async_message_passing(
    G const& g, typename G::vertex_type source, int num_ranks = 4,
    std::function<int(typename G::vertex_type)> owner = {}) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  static_assert(sizeof(W) <= sizeof(std::uint32_t),
                "weights packed into u64 message words");
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_async_message_passing: source out of range");
  if (!owner)
    owner = [num_ranks](V v) { return static_cast<int>(v % num_ranks); };

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  sssp_result<W> result;
  result.distances.assign(n, infinity_v<W>);

  constexpr int kTagWork = 1;
  constexpr int kTagToken = 2;
  constexpr int kTagStop = 3;
  constexpr int kTagGather = 4;

  auto const pack = [](V v, W d) {
    std::uint32_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
           bits;
  };
  auto const unpack_vertex = [](std::uint64_t word) {
    return static_cast<V>(word >> 32);
  };
  auto const unpack_weight = [](std::uint64_t word) {
    W d;
    auto const bits = static_cast<std::uint32_t>(word);
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  };

  mpsim::communicator::run(num_ranks, [&](mpsim::communicator& comm,
                                          int rank) {
    int const P = comm.size();
    std::vector<W> dist(n, infinity_v<W>);
    std::deque<V> work;  // owned vertices pending expansion

    // Safra state: message balance (sent - received work messages), node
    // color, and whether this rank currently holds the token.
    long long balance = 0;
    bool black = false;  // turned black on receiving a work message
    bool stop = false;

    auto const enqueue_local = [&](V v, W d) {
      // Rank-local distances are single-owner — the plain relax flavour.
      if (relax_plain(dist.data(), static_cast<std::size_t>(v), d)) {
        work.push_back(v);
        return true;
      }
      return false;
    };

    if (owner(source) == rank)
      enqueue_local(source, W{0});

    // Token payload: [color (0 = white, 1 = black), accumulated balance
    // (bit-cast from signed)].  Ring direction 0 -> 1 -> ... -> P-1 -> 0.
    auto const send_token = [&](int to, bool token_black, long long q) {
      comm.send(rank, to, kTagToken,
                {token_black ? std::uint64_t{1} : std::uint64_t{0},
                 static_cast<std::uint64_t>(q)});
    };
    // kFresh marks "rank 0 must start a round" (no completed round to
    // judge yet) — Safra's initiator may only conclude from a token that
    // traversed the whole ring.
    constexpr long long kFresh = std::numeric_limits<long long>::min();
    bool token_pending = false;  // a token waiting while we still have work
    bool token_black_in = false;
    long long token_q_in = kFresh;
    if (rank == 0)
      token_pending = true;  // rank 0 owns round initiation

    while (!stop) {
      // 1. Drain local work (bounded burst, so message handling stays
      // responsive).
      int burst = 256;
      while (!work.empty() && burst-- > 0) {
        V const v = work.front();
        work.pop_front();
        W const d_v = dist[static_cast<std::size_t>(v)];
        for (auto const e : g.get_edges(v)) {
          V const u = g.get_dest_vertex(e);
          W const nd = d_v + g.get_edge_weight(e);
          int const u_rank = owner(u);
          if (u_rank == rank) {
            enqueue_local(u, nd);
          } else if (nd < dist[static_cast<std::size_t>(u)]) {
            // Local cache of the best value we have forwarded: suppresses
            // repeat sends without affecting correctness (the owner keeps
            // the authoritative value).
            dist[static_cast<std::size_t>(u)] = nd;
            comm.send(rank, u_rank, kTagWork, {pack(u, nd)});
            ++balance;
          }
        }
      }

      // 2. Absorb everything in the mailbox.
      mpsim::message_t msg;
      while (comm.try_recv(rank, -1, msg)) {
        if (msg.tag == kTagWork) {
          --balance;
          black = true;
          for (std::uint64_t const word : msg.payload)
            enqueue_local(unpack_vertex(word), unpack_weight(word));
        } else if (msg.tag == kTagToken) {
          token_pending = true;
          token_black_in = msg.payload[0] != 0;
          token_q_in = static_cast<long long>(msg.payload[1]);
        } else if (msg.tag == kTagStop) {
          stop = true;
        }
      }
      if (stop)
        break;

      // 3. Safra: handle the token only when locally passive.
      if (token_pending && work.empty()) {
        token_pending = false;
        if (rank == 0) {
          if (P == 1) {
            // Degenerate ring: passive with an empty queue IS quiescence.
            stop = true;
            break;
          }
          if (token_q_in != kFresh && !token_black_in && !black &&
              token_q_in + balance == 0) {
            // A white token completed the ring and the global message
            // balance is zero: every rank is passive and no work message
            // is in flight.  Announce termination.
            for (int dst = 1; dst < P; ++dst)
              comm.send(rank, dst, kTagStop, {});
            stop = true;
            break;
          }
          // Start a fresh white round (Safra: initiator contributes its
          // own balance only at the *judgment*, not into the token).
          send_token(1, /*token_black=*/false, 0);
          black = false;
        } else {
          // Forward: accumulate our balance, taint if we went black since
          // the last token, then whiten ourselves.
          send_token((rank + 1) % P, token_black_in || black,
                     token_q_in + balance);
          black = false;
        }
        token_black_in = false;
        token_q_in = kFresh;
      }

      // 4. Nothing to do and no token: block briefly on the mailbox so we
      // neither spin nor miss termination.
      if (work.empty() && !token_pending) {
        if (comm.recv(rank, -1, msg)) {
          if (msg.tag == kTagWork) {
            --balance;
            black = true;
            for (std::uint64_t const word : msg.payload)
              enqueue_local(unpack_vertex(word), unpack_weight(word));
          } else if (msg.tag == kTagToken) {
            token_pending = true;
            token_black_in = msg.payload[0] != 0;
            token_q_in = static_cast<long long>(msg.payload[1]);
          } else if (msg.tag == kTagStop) {
            stop = true;
          }
        } else {
          stop = true;  // communicator shut down
        }
      }
    }

    // Gather owned distances at rank 0.
    std::vector<std::uint64_t> mine;
    for (std::size_t v = 0; v < n; ++v)
      if (owner(static_cast<V>(v)) == rank && dist[v] != infinity_v<W>)
        mine.push_back(pack(static_cast<V>(v), dist[v]));
    auto const gathered = comm.gather(rank, 0, kTagGather, std::move(mine));
    if (rank == 0)
      for (std::uint64_t const word : gathered)
        result.distances[static_cast<std::size_t>(unpack_vertex(word))] =
            unpack_weight(word);
  });

  return result;
}

}  // namespace essentials::algorithms
