#pragma once

/// \file algorithms/topological_sort.hpp
/// \brief Topological ordering of a DAG (Kahn's algorithm) as a frontier
/// program: the frontier holds the current zero-in-degree layer; the
/// advance condition atomically decrements successors' in-degrees and
/// activates those that hit zero.  Doubling as a cycle detector: fewer than
/// V emitted vertices means a cycle.

#include <cstddef>
#include <optional>
#include <vector>

#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct topo_result {
  std::vector<V> order;   ///< a valid topological order (empty on cycle)
  bool is_dag = false;
  std::size_t levels = 0; ///< longest-path layering depth
};

/// Kahn layering.  `order` concatenates the BSP layers, so it is also a
/// parallel schedule: everything in one layer can run concurrently.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csc)
topo_result<typename G::vertex_type> topological_sort(P policy, G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  topo_result<V> result;
  result.order.reserve(n);

  std::vector<E> in_degree(n);
  for (std::size_t v = 0; v < n; ++v)
    in_degree[v] = g.get_in_degree(static_cast<V>(v));
  E* const indeg = in_degree.data();

  frontier::sparse_frontier<V> layer;
  for (std::size_t v = 0; v < n; ++v)
    if (in_degree[v] == 0)
      layer.add_vertex(static_cast<V>(v));

  while (!layer.empty()) {
    for (V const v : layer.active())
      result.order.push_back(v);
    layer = operators::neighbors_expand(
        policy, g, layer, [indeg](V, V dst, E, W) {
          // Atomically consume one incoming edge; the consumer of the last
          // edge owns the activation, so the next layer is duplicate-free.
          return atomic::add(&indeg[dst], E{-1}) == E{1};
        });
    ++result.levels;
  }

  result.is_dag = result.order.size() == n;
  if (!result.is_dag)
    result.order.clear();
  return result;
}

/// Check that `order` is a valid topological order of g (every edge goes
/// forward in the order, every vertex appears exactly once).
template <typename G, typename V>
bool is_valid_topological_order(G const& g, std::vector<V> const& order) {
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  if (order.size() != n)
    return false;
  std::vector<V> position(n, invalid_vertex<V>);
  for (std::size_t i = 0; i < order.size(); ++i) {
    auto const v = static_cast<std::size_t>(order[i]);
    if (v >= n || position[v] != invalid_vertex<V>)
      return false;
    position[v] = static_cast<V>(i);
  }
  for (V u = 0; u < g.get_num_vertices(); ++u)
    for (auto const e : g.get_edges(u))
      if (position[static_cast<std::size_t>(u)] >=
          position[static_cast<std::size_t>(g.get_dest_vertex(e))])
        return false;
  return true;
}

}  // namespace essentials::algorithms
