#pragma once

/// \file algorithms/ktruss.hpp
/// \brief k-truss decomposition (a Gunrock/essentials application): the
/// k-truss is the maximal subgraph whose every edge participates in at
/// least k-2 triangles within the subgraph.  Computed by iterative edge
/// peeling — the edge-centric sibling of k-core's vertex peeling, built
/// on the triangle intersection kernel.
///
/// Input: undirected (symmetric, deduplicated, loop-free) graph.  Output:
/// trussness per *undirected* edge {u < v}: the largest k whose truss
/// contains the edge (edges in no triangle get trussness 2).

#include <algorithm>
#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct ktruss_result {
  /// trussness keyed by undirected edge {min(u,v), max(u,v)}.
  std::map<std::pair<V, V>, V> trussness;
  V max_truss = 2;
};

/// Peeling k-truss.  Support counting is vertex-parallel per round; the
/// peel itself is serial per round (rounds are few).  O(rounds * E * d̄)
/// worst case — suitable for the analytics sizes tests and examples use.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
ktruss_result<typename G::vertex_type> ktruss(P policy, G const& g) {
  using V = typename G::vertex_type;
  ktruss_result<V> result;

  // Live undirected edge set with supports, rebuilt per k.
  std::map<std::pair<V, V>, V> alive;
  for (V u = 0; u < g.get_num_vertices(); ++u)
    for (auto const e : g.get_edges(u)) {
      V const v = g.get_dest_vertex(e);
      if (u < v)
        alive.emplace(std::make_pair(u, v), V{0});
    }
  for (auto& [edge, support] : alive)
    result.trussness[edge] = 2;

  V k = 3;
  while (!alive.empty()) {
    // Count support (triangles through each live edge) — adjacency sets
    // of the *live* subgraph.
    std::vector<std::vector<V>> adj(
        static_cast<std::size_t>(g.get_num_vertices()));
    for (auto const& [edge, support] : alive) {
      adj[static_cast<std::size_t>(edge.first)].push_back(edge.second);
      adj[static_cast<std::size_t>(edge.second)].push_back(edge.first);
    }
    for (auto& neighbors : adj)
      std::sort(neighbors.begin(), neighbors.end());

    auto const support_of = [&adj](V u, V v) {
      auto const& a = adj[static_cast<std::size_t>(u)];
      auto const& b = adj[static_cast<std::size_t>(v)];
      std::size_t i = 0, j = 0, count = 0;
      while (i < a.size() && j < b.size()) {
        if (a[i] == b[j]) {
          ++count;
          ++i;
          ++j;
        } else if (a[i] < b[j]) {
          ++i;
        } else {
          ++j;
        }
      }
      return static_cast<V>(count);
    };

    // Peel every edge with support < k - 2, cascading within this k.
    bool removed_any = false;
    bool cascading = true;
    while (cascading) {
      cascading = false;
      std::vector<std::pair<V, V>> doomed;
      for (auto const& [edge, unused] : alive) {
        (void)unused;
        if (support_of(edge.first, edge.second) < static_cast<V>(k - 2))
          doomed.push_back(edge);
      }
      for (auto const& edge : doomed) {
        alive.erase(edge);
        auto& au = adj[static_cast<std::size_t>(edge.first)];
        au.erase(std::find(au.begin(), au.end(), edge.second));
        auto& av = adj[static_cast<std::size_t>(edge.second)];
        av.erase(std::find(av.begin(), av.end(), edge.first));
        cascading = true;
        removed_any = true;
      }
    }
    // Everything still alive survives the k-truss: record and go deeper.
    for (auto const& [edge, unused] : alive) {
      (void)unused;
      result.trussness[edge] = k;
    }
    if (!alive.empty())
      result.max_truss = k;
    ++k;
    (void)removed_any;
    (void)policy;
    if (k > g.get_num_vertices() + 2)
      break;  // safety net (cannot trigger on valid input)
  }
  return result;
}

/// Truss validity: within the set of edges with trussness >= k, every edge
/// must close >= k-2 triangles (checked directly from the definition).
template <typename V>
bool is_valid_truss_level(std::map<std::pair<V, V>, V> const& trussness,
                          V k) {
  // Build adjacency of the >= k subgraph.
  std::map<V, std::vector<V>> adj;
  for (auto const& [edge, t] : trussness) {
    if (t < k)
      continue;
    adj[edge.first].push_back(edge.second);
    adj[edge.second].push_back(edge.first);
  }
  for (auto& [v, neighbors] : adj)
    std::sort(neighbors.begin(), neighbors.end());
  for (auto const& [edge, t] : trussness) {
    if (t < k)
      continue;
    auto const& a = adj[edge.first];
    auto const& b = adj[edge.second];
    std::size_t i = 0, j = 0, common = 0;
    while (i < a.size() && j < b.size()) {
      if (a[i] == b[j]) {
        ++common;
        ++i;
        ++j;
      } else if (a[i] < b[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    if (common < static_cast<std::size_t>(k - 2))
      return false;
  }
  return true;
}

}  // namespace essentials::algorithms
