#pragma once

/// \file algorithms/sssp.hpp
/// \brief Single-source shortest paths — the paper's worked example
/// (Listing 4), in every timing/communication/direction variant the
/// abstraction supports, plus the serial textbook baselines the parallel
/// versions are validated against.
///
/// Variants:
///  - `sssp` (push, BSP, shared memory): Listing 4 verbatim — sparse
///    frontier, `neighbors_expand` with the atomic-min relaxation
///    condition, `while (f.size() != 0)` loop.  Policy-parameterized.
///  - `sssp_pull` (pull, BSP): dense frontiers over the CSC view.
///  - `sssp_async` (asynchronous, shared memory): queue frontier +
///    `async_loop`; no barriers anywhere, convergence by quiescence.
///  - `sssp_message_passing`: vertices partitioned across mpsim ranks; all
///    relaxations of remote vertices travel as (vertex, distance) messages.
///  - Baselines: `dijkstra` (binary heap, the exact oracle) and
///    `bellman_ford` (the textbook bulk-relaxation SSSP).
///
/// Weights must be non-negative for the label-correcting parallel variants
/// to terminate; this matches the paper's (and Gunrock's) SSSP.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "algorithms/relax.hpp"
#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/advance_balanced.hpp"
#include "core/operators/filter.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "mpsim/communicator.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// Result of an SSSP run: distances (infinity_v for unreachable) and loop
/// telemetry.
template <typename W = weight_t>
struct sssp_result {
  std::vector<W> distances;
  std::size_t iterations = 0;  ///< supersteps (async variants report 0)
};

// ---------------------------------------------------------------------------
// Push BSP — paper Listing 4
// ---------------------------------------------------------------------------

/// Parallel SSSP, Listing 4: initialize distances, seed the frontier with
/// the source, and loop `neighbors_expand` with the atomic-min relaxation
/// condition until the frontier drains.  `uniquify` compresses the output
/// frontier each superstep so repeated discoveries of a vertex cost one
/// future expansion, not many.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
sssp_result<typename G::weight_type> sssp(P policy, G const& g,
                                          typename G::vertex_type source) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp: source out of range");

  sssp_result<W> result;
  result.distances.assign(static_cast<std::size_t>(g.get_num_vertices()),
                          infinity_v<W>);
  result.distances[static_cast<std::size_t>(source)] = W{0};
  W* const dist = result.distances.data();

  frontier::sparse_frontier<V> f;
  f.add_vertex(source);

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::sparse_frontier<V> in, std::size_t /*iteration*/) {
        // Expand the frontier with the user-defined condition for SSSP —
        // Listing 4's lambda: relax, and keep the neighbor iff our
        // relaxation improved its distance.  The atomic-load-source /
        // atomic-min-destination contract lives in algorithms/relax.hpp,
        // shared with delta-stepping and the residual engine.
        auto out = operators::advance_balanced(policy, g, in,
                                               make_relax_condition(dist));
        if constexpr (std::decay_t<P>::is_parallel)
          operators::uniquify(policy, out,
                              static_cast<std::size_t>(g.get_num_vertices()));
        else
          operators::uniquify(policy, out);
        return out;
      },
      enactor::frontier_empty{});
  result.iterations = stats.iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Pull BSP
// ---------------------------------------------------------------------------

/// Pull-based SSSP over the transposed (CSC) structure: every vertex scans
/// its in-edges for active predecessors and relaxes through them.  Dense
/// frontiers throughout — the representation pull traversal wants, since it
/// queries membership per in-edge.  No atomics are needed on the relaxation
/// because each vertex's distance is written only by the lane that owns the
/// vertex in the pull scan.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csc)
sssp_result<typename G::weight_type> sssp_pull(
    P policy, G const& g, typename G::vertex_type source) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_pull: source out of range");

  sssp_result<W> result;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  result.distances.assign(n, infinity_v<W>);
  result.distances[static_cast<std::size_t>(source)] = W{0};
  W* const dist = result.distances.data();

  frontier::dense_frontier<V> f(n);
  f.add_vertex(source);

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::dense_frontier<V> in, std::size_t /*iteration*/) {
        if (auto* const rec = telemetry::current())
          rec->set_direction(direction_t::pull, false, frontier::density(in));
        // Pull: dst relaxes itself through every active in-neighbor.  The
        // condition writes dist[dst] without atomics — in the pull scan,
        // vertex dst is processed by exactly one lane.
        return operators::advance_pull<false>(
            policy, g, in,
            [dist](V const src, V const dst, E const /*edge*/, W const weight) {
              if (dist[src] == infinity_v<W>)
                return false;
              return relax_plain(dist, static_cast<std::size_t>(dst),
                                 dist[src] + weight);
            });
      },
      enactor::frontier_empty{});
  result.iterations = stats.iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Asynchronous (queue frontier)
// ---------------------------------------------------------------------------

/// Asynchronous SSSP: the frontier is a concurrent work queue; `workers`
/// consumers relax out-edges of popped vertices and push improved neighbors
/// straight back — no supersteps, no barriers.  Terminates at quiescence.
/// The same relaxation lambda as the BSP version runs against the same
/// shared distance array; only the *timing model* changed, which is the
/// point of §III-A.
template <typename G>
sssp_result<typename G::weight_type> sssp_async(
    G const& g, typename G::vertex_type source, std::size_t workers = 4) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_async: source out of range");

  sssp_result<W> result;
  result.distances.assign(static_cast<std::size_t>(g.get_num_vertices()),
                          infinity_v<W>);
  result.distances[static_cast<std::size_t>(source)] = W{0};
  W* const dist = result.distances.data();

  frontier::async_queue_frontier<V> f;
  f.add_vertex(source);
  enactor::async_loop(f, workers, [&g, dist, &f](V const v) {
    // Snapshot our current distance and relax every out-edge; a stale
    // (larger) snapshot only causes a failed relaxation, never a wrong
    // result.  Improved neighbors go straight back on the queue.
    relax_out_edges(g, v, dist, [&f](V const n) { f.add_vertex(n); });
  });
  return result;
}

// ---------------------------------------------------------------------------
// Message passing (mpsim ranks)
// ---------------------------------------------------------------------------

/// Message-passing SSSP: vertices are partitioned across `num_ranks` by
/// `owner` (default: v mod P, the random-partition heuristic).  Each rank
/// keeps distances only for the vertices it owns; a relaxation of a remote
/// vertex is shipped as a (vertex, candidate-distance) message.  The BSP
/// supersteps end with an all-reduce of the global frontier size — the
/// shared-nothing flavour of Listing 4's convergence condition.
///
/// The full distance vector (assembled by rank 0 via messages) is returned.
template <typename G>
sssp_result<typename G::weight_type> sssp_message_passing(
    G const& g, typename G::vertex_type source, int num_ranks = 4,
    std::function<int(typename G::vertex_type)> owner = {}) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  static_assert(sizeof(W) <= sizeof(std::uint32_t),
                "weights packed into u64 message words");
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_message_passing: source out of range");
  if (!owner)
    owner = [num_ranks](V v) { return static_cast<int>(v % num_ranks); };

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  sssp_result<W> result;
  result.distances.assign(n, infinity_v<W>);
  std::size_t iterations = 0;

  constexpr int kTagRelax = 1;
  constexpr int kTagGather = 2;

  auto const pack = [](V v, W d) {
    std::uint32_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
           bits;
  };
  auto const unpack_vertex = [](std::uint64_t word) {
    return static_cast<V>(word >> 32);
  };
  auto const unpack_weight = [](std::uint64_t word) {
    W d;
    std::uint32_t const bits = static_cast<std::uint32_t>(word);
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  };

  mpsim::communicator::run(num_ranks, [&](mpsim::communicator& comm, int rank) {
    // Rank-private state: distances of owned vertices only (keyed by global
    // id for simplicity; unowned slots stay untouched).
    std::vector<W> dist(n, infinity_v<W>);
    std::vector<V> active;
    if (owner(source) == rank) {
      dist[static_cast<std::size_t>(source)] = W{0};
      active.push_back(source);
    }

    std::vector<std::vector<std::uint64_t>> outgoing(
        static_cast<std::size_t>(comm.size()));
    int superstep = 0;
    for (;;) {
      // Relax out-edges of owned active vertices.
      std::vector<V> next;
      for (V const v : active) {
        W const d_v = dist[static_cast<std::size_t>(v)];
        for (auto const e : g.get_edges(v)) {
          V const dst = g.get_dest_vertex(e);
          W const new_d = d_v + g.get_edge_weight(e);
          int const dst_rank = owner(dst);
          if (dst_rank == rank) {
            if (relax_plain(dist.data(), static_cast<std::size_t>(dst), new_d))
              next.push_back(dst);
          } else {
            outgoing[static_cast<std::size_t>(dst_rank)].push_back(
                pack(dst, new_d));
          }
        }
      }
      // Exchange relaxation messages (everyone sends to everyone, possibly
      // empty, so receives are deterministic).
      int const tag = kTagRelax + 2 * superstep;
      for (int dst = 0; dst < comm.size(); ++dst) {
        if (dst == rank)
          continue;
        comm.send(rank, dst, tag,
                  std::move(outgoing[static_cast<std::size_t>(dst)]));
        outgoing[static_cast<std::size_t>(dst)].clear();
      }
      for (int i = 0; i < comm.size() - 1; ++i) {
        mpsim::message_t msg;
        if (!comm.recv(rank, tag, msg))
          return;
        for (std::uint64_t const word : msg.payload) {
          V const v = unpack_vertex(word);
          W const d = unpack_weight(word);
          if (relax_plain(dist.data(), static_cast<std::size_t>(v), d))
            next.push_back(v);
        }
      }
      // Deduplicate the next active set (a vertex may improve many times in
      // one superstep).
      std::sort(next.begin(), next.end());
      next.erase(std::unique(next.begin(), next.end()), next.end());
      active = std::move(next);

      std::uint64_t const global_active = comm.all_reduce_sum(
          rank, static_cast<std::uint64_t>(active.size()));
      ++superstep;
      if (global_active == 0)
        break;
    }

    // Gather owned distances at rank 0.
    std::vector<std::uint64_t> mine;
    for (std::size_t v = 0; v < n; ++v)
      if (owner(static_cast<V>(v)) == rank &&
          dist[v] != infinity_v<W>)
        mine.push_back(pack(static_cast<V>(v), dist[v]));
    if (rank == 0) {
      for (std::uint64_t const word : mine)
        result.distances[static_cast<std::size_t>(unpack_vertex(word))] =
            unpack_weight(word);
      for (int i = 0; i < comm.size() - 1; ++i) {
        mpsim::message_t msg;
        if (!comm.recv(0, kTagGather, msg))
          return;
        for (std::uint64_t const word : msg.payload)
          result.distances[static_cast<std::size_t>(unpack_vertex(word))] =
              unpack_weight(word);
      }
      iterations = static_cast<std::size_t>(superstep);
    } else {
      comm.send(rank, 0, kTagGather, std::move(mine));
    }
  });

  result.iterations = iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Serial baselines
// ---------------------------------------------------------------------------

/// Dijkstra with a binary heap — the exact serial oracle (CLRS).  O((V+E)
/// log V), non-negative weights.
template <typename G>
sssp_result<typename G::weight_type> dijkstra(
    G const& g, typename G::vertex_type source) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "dijkstra: source out of range");

  sssp_result<W> result;
  result.distances.assign(static_cast<std::size_t>(g.get_num_vertices()),
                          infinity_v<W>);
  result.distances[static_cast<std::size_t>(source)] = W{0};

  using entry = std::pair<W, V>;
  std::priority_queue<entry, std::vector<entry>, std::greater<entry>> heap;
  heap.emplace(W{0}, source);
  while (!heap.empty()) {
    auto const [d, v] = heap.top();
    heap.pop();
    if (d > result.distances[static_cast<std::size_t>(v)])
      continue;  // stale entry
    for (auto const e : g.get_edges(v)) {
      V const n = g.get_dest_vertex(e);
      W const new_d = d + g.get_edge_weight(e);
      if (relax_plain(result.distances.data(), static_cast<std::size_t>(n),
                      new_d))
        heap.emplace(new_d, n);
    }
  }
  return result;
}

/// Bellman–Ford — the textbook bulk relaxation.  Handles negative weights
/// (but not negative cycles); used as a second, structurally different
/// oracle in the property tests.
template <typename G>
sssp_result<typename G::weight_type> bellman_ford(
    G const& g, typename G::vertex_type source) {
  using V = typename G::vertex_type;
  using W = typename G::weight_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "bellman_ford: source out of range");

  sssp_result<W> result;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  result.distances.assign(n, infinity_v<W>);
  result.distances[static_cast<std::size_t>(source)] = W{0};

  for (std::size_t round = 0; round + 1 < n || round == 0; ++round) {
    bool changed = false;
    for (V u = 0; u < g.get_num_vertices(); ++u) {
      W const d_u = result.distances[static_cast<std::size_t>(u)];
      if (d_u == infinity_v<W>)
        continue;
      for (auto const e : g.get_edges(u)) {
        V const v = g.get_dest_vertex(e);
        W const new_d = d_u + g.get_edge_weight(e);
        if (relax_plain(result.distances.data(), static_cast<std::size_t>(v),
                        new_d))
          changed = true;
      }
    }
    ++result.iterations;
    if (!changed)
      break;
  }
  return result;
}

}  // namespace essentials::algorithms
