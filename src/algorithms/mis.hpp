#pragma once

/// \file algorithms/mis.hpp
/// \brief Maximal independent set — Luby's randomized parallel algorithm
/// expressed as a frontier program, with the serial greedy oracle.
///
/// Each round, every undecided vertex whose random priority beats all
/// undecided neighbors enters the set; its neighbors leave the game.  The
/// undecided set is a frontier that shrinks geometrically (expected
/// O(log V) BSP rounds) — the same independent-set schedule that powers
/// Jones-Plassmann coloring, isolated here as its own primitive.
///
/// Undirected semantics: run on a symmetrized graph.

#include <cstddef>
#include <cstdint>
#include <numeric>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "generators/random.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct mis_result {
  std::vector<bool> in_set;
  std::size_t set_size = 0;
  std::size_t rounds = 0;
};

/// Luby's algorithm.  Deterministic for a fixed seed.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
mis_result<typename G::vertex_type> maximal_independent_set(
    P policy, G const& g, std::uint64_t seed = 1) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  mis_result<V> result;
  result.in_set.assign(n, false);

  // 0 = undecided, 1 = in set, 2 = excluded (neighbor in set).
  std::vector<char> state(n, 0);
  char* const st = state.data();
  std::vector<std::uint64_t> priority(n);
  generators::rng_t rng(seed);
  for (auto& p : priority)
    p = rng.next_u64();

  std::vector<V> undecided(n);
  std::iota(undecided.begin(), undecided.end(), V{0});

  while (!undecided.empty()) {
    frontier::sparse_frontier<V> f(undecided);
    // Phase 1: local maxima among undecided vertices join the set.
    operators::compute(policy, f, [&](V v) {
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        if (nb == v || st[nb] == 2)
          continue;
        if (st[nb] == 1)
          return;  // a neighbor already won: we can never join
        auto const pv = priority[static_cast<std::size_t>(v)];
        auto const pn = priority[static_cast<std::size_t>(nb)];
        if (pn > pv || (pn == pv && nb > v))
          return;
      }
      st[v] = 1;
    });
    // Phase 2: neighbors of winners are excluded.  Winners form an
    // independent set, so the two phases cannot race on the same vertex.
    operators::compute(policy, f, [&](V v) {
      if (st[v] != 0)
        return;
      for (auto const e : g.get_edges(v)) {
        if (st[g.get_dest_vertex(e)] == 1) {
          st[v] = 2;
          return;
        }
      }
    });

    std::vector<V> next;
    next.reserve(undecided.size());
    for (V const v : undecided)
      if (st[static_cast<std::size_t>(v)] == 0)
        next.push_back(v);
    expects(next.size() < undecided.size(),
            "maximal_independent_set: no progress");
    undecided = std::move(next);
    ++result.rounds;
  }

  for (std::size_t v = 0; v < n; ++v) {
    result.in_set[v] = state[v] == 1;
    result.set_size += state[v] == 1;
  }
  return result;
}

/// Serial greedy MIS in vertex order — the oracle for independence +
/// maximality (the set itself differs; the *properties* must hold for
/// both).
template <typename G>
mis_result<typename G::vertex_type> maximal_independent_set_serial(
    G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  mis_result<V> result;
  result.in_set.assign(n, false);
  std::vector<char> blocked(n, 0);
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    if (blocked[static_cast<std::size_t>(v)])
      continue;
    result.in_set[static_cast<std::size_t>(v)] = true;
    ++result.set_size;
    for (auto const e : g.get_edges(v))
      blocked[static_cast<std::size_t>(g.get_dest_vertex(e))] = 1;
  }
  result.rounds = 1;
  return result;
}

/// Validity: no two set members adjacent (independence) and every
/// non-member has a member neighbor (maximality).
template <typename G>
bool is_valid_mis(G const& g, std::vector<bool> const& in_set) {
  using V = typename G::vertex_type;
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    if (in_set[static_cast<std::size_t>(v)]) {
      for (auto const e : g.get_edges(v)) {
        V const nb = g.get_dest_vertex(e);
        if (nb != v && in_set[static_cast<std::size_t>(nb)])
          return false;  // independence violated
      }
    } else {
      // Maximality: every non-member needs a member neighbor.  (An
      // isolated non-member fails vacuously — it could always be added.)
      bool has_member_neighbor = false;
      for (auto const e : g.get_edges(v))
        has_member_neighbor |=
            in_set[static_cast<std::size_t>(g.get_dest_vertex(e))];
      if (!has_member_neighbor)
        return false;
    }
  }
  return true;
}

}  // namespace essentials::algorithms
