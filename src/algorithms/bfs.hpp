#pragma once

/// \file algorithms/bfs.hpp
/// \brief Breadth-first search: push, pull, direction-optimizing, async
/// queue, and message-passing variants, plus the serial oracle.
///
/// BFS is the paper's cleanest showcase for the push-vs-pull pillar
/// (§III-C): push scans out-edges of the frontier (work ∝ frontier edges),
/// pull scans in-edges of *unvisited* vertices (work ∝ unvisited edges).
/// The direction-optimizing variant (Beamer et al.'s heuristic expressed in
/// our abstraction) switches per superstep on frontier density — switching
/// representation (sparse ↔ dense) at the same time, which is exactly the
/// "multiple underlying representations behind one interface" claim.

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>
#include <vector>

#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/advance_balanced.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "mpsim/communicator.hpp"
#include "parallel/atomic_bitset.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// BFS result: hop distances (-1 == unreached) and parents (-1 == none).
template <typename V = vertex_t>
struct bfs_result {
  std::vector<V> depths;
  std::vector<V> parents;
  std::size_t iterations = 0;
};

namespace detail {

template <typename G>
bfs_result<typename G::vertex_type> make_bfs_state(
    G const& g, typename G::vertex_type source, char const* who) {
  using V = typename G::vertex_type;
  expects(source >= 0 && source < g.get_num_vertices(), who);
  bfs_result<V> r;
  r.depths.assign(static_cast<std::size_t>(g.get_num_vertices()), V{-1});
  r.parents.assign(static_cast<std::size_t>(g.get_num_vertices()), V{-1});
  r.depths[static_cast<std::size_t>(source)] = V{0};
  return r;
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Push BSP
// ---------------------------------------------------------------------------

/// Push BFS: advance the sparse frontier along out-edges; the condition is
/// a claim ("first visitor wins") on a visited bitmap, which deduplicates
/// the output frontier as a side effect — no uniquify needed.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
bfs_result<typename G::vertex_type> bfs(P policy, G const& g,
                                        typename G::vertex_type source) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  auto result = detail::make_bfs_state(g, source, "bfs: source out of range");
  V* const depths = result.depths.data();
  V* const parents = result.parents.data();

  parallel::atomic_bitset visited(
      static_cast<std::size_t>(g.get_num_vertices()));
  visited.set(static_cast<std::size_t>(source));

  frontier::sparse_frontier<V> f;
  f.add_vertex(source);

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::sparse_frontier<V> in, std::size_t iteration) {
        V const next_depth = static_cast<V>(iteration + 1);
        return operators::advance_balanced(
            policy, g, in,
            [&visited, depths, parents, next_depth](
                V const src, V const dst, E const /*e*/, W const /*w*/) {
              if (!visited.test_and_set(static_cast<std::size_t>(dst)))
                return false;  // someone else claimed dst
              depths[dst] = next_depth;
              parents[dst] = src;
              return true;
            });
      },
      enactor::frontier_empty{});
  result.iterations = stats.iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Pull BSP
// ---------------------------------------------------------------------------

/// Pull BFS: each unvisited vertex scans its in-edges for a parent in the
/// current (dense) frontier; early-exit on the first hit.  Requires the
/// CSC view.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csc)
bfs_result<typename G::vertex_type> bfs_pull(P policy, G const& g,
                                             typename G::vertex_type source) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  auto result =
      detail::make_bfs_state(g, source, "bfs_pull: source out of range");
  V* const depths = result.depths.data();
  V* const parents = result.parents.data();

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  frontier::dense_frontier<V> f(n);
  f.add_vertex(source);

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::dense_frontier<V> in, std::size_t iteration) {
        V const next_depth = static_cast<V>(iteration + 1);
        if (auto* const rec = telemetry::current())
          rec->set_direction(direction_t::pull, false, frontier::density(in));
        // In the pull scan each dst is handled by exactly one lane, so the
        // depth/parent writes need no atomics; the "unvisited" test makes
        // the advance skip settled vertices wholesale.
        return operators::advance_pull<true>(
            policy, g, in,
            [depths, parents, next_depth](V const src, V const dst,
                                          E const /*e*/, W const /*w*/) {
              if (depths[dst] != V{-1})
                return false;
              depths[dst] = next_depth;
              parents[dst] = src;
              return true;
            });
      },
      enactor::frontier_empty{});
  result.iterations = stats.iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Direction-optimizing BSP
// ---------------------------------------------------------------------------

/// Tuning knobs for direction-optimizing BFS (Beamer-style).  Defaults
/// follow the published heuristic shape: go pull when the frontier's edge
/// work exceeds ~1/alpha of the remaining edge work; return to push when
/// the frontier thins below 1/beta of the vertices.
struct dobfs_options {
  double alpha = 15.0;
  double beta = 18.0;
};

/// Direction-optimizing BFS: starts push/sparse; when the frontier grows
/// dense it converts the frontier representation (sparse -> dense) and
/// switches to pull; when the frontier thins it converts back.  One
/// algorithm, two operators, two frontier representations — the crossover
/// machinery the abstraction exists to express.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csr && G::has_csc)
bfs_result<typename G::vertex_type> bfs_direction_optimizing(
    P policy, G const& g, typename G::vertex_type source,
    dobfs_options opt = {}) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  auto result =
      detail::make_bfs_state(g, source, "dobfs: source out of range");
  V* const depths = result.depths.data();
  V* const parents = result.parents.data();

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  parallel::atomic_bitset visited(n);
  visited.set(static_cast<std::size_t>(source));

  frontier::sparse_frontier<V> sparse;
  sparse.add_vertex(source);
  frontier::dense_frontier<V> dense(n);
  bool pulling = false;

  telemetry::recorder* const rec = telemetry::current();
  std::size_t iteration = 0;
  std::size_t frontier_size = 1;
  while (frontier_size != 0) {
    V const next_depth = static_cast<V>(iteration + 1);
    // Heuristic signal: frontier share of vertices.
    double const density =
        static_cast<double>(frontier_size) / static_cast<double>(n);
    bool const want_pull = density > 1.0 / opt.alpha;
    bool const want_push = density < 1.0 / opt.beta;

    bool switched = false;
    if (!pulling && want_pull) {
      dense = frontier::to_dense(sparse, n);
      pulling = true;
      switched = true;
    } else if (pulling && want_push && !want_pull) {
      sparse = frontier::to_sparse(dense);
      pulling = false;
      switched = true;
    }

    // Telemetry: one superstep per level, carrying the direction decision
    // the Beamer heuristic just made and the density it was based on.
    if (rec) {
      rec->begin_superstep(frontier_size,
                           pulling ? direction_t::pull : direction_t::push);
      rec->set_direction(pulling ? direction_t::pull : direction_t::push,
                         switched, density);
    }

    if (pulling) {
      dense = operators::advance_pull<true>(
          policy, g, dense,
          [depths, parents, next_depth](V const src, V const dst, E const,
                                        W const) {
            if (depths[dst] != V{-1})
              return false;
            depths[dst] = next_depth;
            parents[dst] = src;
            return true;
          });
      // Keep the visited bitmap coherent for a later return to push.
      dense.for_each_active(
          [&visited](V v) { visited.set(static_cast<std::size_t>(v)); });
      frontier_size = dense.size();
    } else {
      sparse = operators::advance_balanced(
          policy, g, sparse,
          [&visited, depths, parents, next_depth](V const src, V const dst,
                                                  E const, W const) {
            if (!visited.test_and_set(static_cast<std::size_t>(dst)))
              return false;
            depths[dst] = next_depth;
            parents[dst] = src;
            return true;
          });
      frontier_size = sparse.size();
    }
    if (rec)
      rec->end_superstep(frontier_size);
    ++iteration;
  }
  result.iterations = iteration;
  return result;
}

// ---------------------------------------------------------------------------
// Asynchronous (queue frontier)
// ---------------------------------------------------------------------------

/// Asynchronous BFS: consumers pop vertices and claim their neighbors with
/// an atomic-min on the depth array.  Without supersteps, "depth" loses its
/// strict level meaning during the run, but the atomic-min relaxation makes
/// the fixed point identical to BSP BFS depths on termination (it is SSSP
/// with unit weights over an integer lattice).
template <typename G>
bfs_result<typename G::vertex_type> bfs_async(G const& g,
                                              typename G::vertex_type source,
                                              std::size_t workers = 4) {
  using V = typename G::vertex_type;
  auto result =
      detail::make_bfs_state(g, source, "bfs_async: source out of range");
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  // Use max() as "unreached" so atomic::min works monotonically.
  std::vector<V> depth(n, std::numeric_limits<V>::max());
  depth[static_cast<std::size_t>(source)] = V{0};
  V* const d = depth.data();

  frontier::async_queue_frontier<V> f;
  f.add_vertex(source);
  enactor::async_loop(f, workers, [&g, d, &f](V const v) {
    V const d_v = atomic::load(&d[v]);
    if (d_v == std::numeric_limits<V>::max())
      return;
    for (auto const e : g.get_edges(v)) {
      V const nb = g.get_dest_vertex(e);
      V const nd = static_cast<V>(d_v + 1);
      if (nd < atomic::min(&d[nb], nd))
        f.add_vertex(nb);
    }
  });

  for (std::size_t v = 0; v < n; ++v)
    result.depths[v] =
        depth[v] == std::numeric_limits<V>::max() ? V{-1} : depth[v];
  // Parents are not tracked in the async variant (would need a second CAS);
  // depths are the contract.
  return result;
}

// ---------------------------------------------------------------------------
// Message passing (distributed frontier)
// ---------------------------------------------------------------------------

/// Message-passing BFS built directly on the distributed frontier: each
/// rank owns vertices by `owner` (default v mod P), expands its local
/// slice, and lets `exchange()` route discovered vertices to their owners.
/// Demonstrates that the Listing 4 loop shape survives the communication
/// model swap: seed, expand, exchange, test global emptiness.
template <typename G>
bfs_result<typename G::vertex_type> bfs_message_passing(
    G const& g, typename G::vertex_type source, int num_ranks = 4,
    std::function<int(typename G::vertex_type)> owner = {}) {
  using V = typename G::vertex_type;
  expects(source >= 0 && source < g.get_num_vertices(),
          "bfs_message_passing: source out of range");
  if (!owner)
    owner = [num_ranks](V v) { return static_cast<int>(v % num_ranks); };

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  bfs_result<V> result;
  result.depths.assign(n, V{-1});
  result.parents.assign(n, V{-1});
  std::size_t iterations = 0;

  constexpr int kTagGather = 1 << 20;

  mpsim::communicator::run(num_ranks, [&](mpsim::communicator& comm, int rank) {
    std::vector<V> depth(n, V{-1});
    frontier::distributed_frontier<V> f(comm, rank, owner);
    if (owner(source) == rank)
      depth[static_cast<std::size_t>(source)] = V{0};
    f.add_vertex(source);  // remote adds are buffered; owner keeps it local

    int superstep = 0;
    V level = 0;  // BFS level of the current local set (each level costs two
                  // exchanges: expansion + owner-side dedupe)
    // Promote the seed into the current set (superstep tag 0).
    std::size_t global = f.exchange(superstep++);
    while (global != 0) {
      for (V const v : f.local()) {
        if (depth[static_cast<std::size_t>(v)] == V{-1})
          depth[static_cast<std::size_t>(v)] = level;
      }
      for (V const v : f.local()) {
        for (auto const e : g.get_edges(v)) {
          V const nb = g.get_dest_vertex(e);
          // Only the owner knows nb's visited state; optimistically forward
          // and let the owner drop revisits next superstep.
          if (owner(nb) != rank || depth[static_cast<std::size_t>(nb)] == V{-1})
            f.add_vertex(nb);
        }
      }
      global = f.exchange(superstep++);
      // Drop already-visited vertices from the received set (dedupe at the
      // owner — the message-passing analogue of the visited bitmap).
      if (global != 0) {
        std::vector<V> fresh;
        for (V const v : f.local())
          if (depth[static_cast<std::size_t>(v)] == V{-1})
            fresh.push_back(v);
        std::sort(fresh.begin(), fresh.end());
        fresh.erase(std::unique(fresh.begin(), fresh.end()), fresh.end());
        // Replace the local set with the deduplicated fresh vertices and
        // re-reduce the global count so every rank agrees on emptiness.
        f.clear();
        for (V const v : fresh)
          f.add_vertex(v);
        global = f.exchange(superstep++);
      }
      ++level;
    }

    // Gather depths at rank 0.
    std::vector<std::uint64_t> mine;
    for (std::size_t v = 0; v < n; ++v)
      if (owner(static_cast<V>(v)) == rank && depth[v] != V{-1})
        mine.push_back((static_cast<std::uint64_t>(v) << 32) |
                       static_cast<std::uint32_t>(depth[v]));
    if (rank == 0) {
      for (std::uint64_t const w : mine)
        result.depths[static_cast<std::size_t>(w >> 32)] =
            static_cast<V>(static_cast<std::uint32_t>(w));
      for (int i = 0; i < comm.size() - 1; ++i) {
        mpsim::message_t msg;
        if (!comm.recv(0, kTagGather, msg))
          return;
        for (std::uint64_t const w : msg.payload)
          result.depths[static_cast<std::size_t>(w >> 32)] =
              static_cast<V>(static_cast<std::uint32_t>(w));
      }
      iterations = static_cast<std::size_t>(level);
    } else {
      comm.send(rank, 0, kTagGather, std::move(mine));
    }
  });

  result.iterations = iterations;
  return result;
}

// ---------------------------------------------------------------------------
// Serial oracle
// ---------------------------------------------------------------------------

/// Textbook queue BFS (CLRS) — the exact oracle for depths and parent
/// validity.
template <typename G>
bfs_result<typename G::vertex_type> bfs_serial(
    G const& g, typename G::vertex_type source) {
  using V = typename G::vertex_type;
  auto result =
      detail::make_bfs_state(g, source, "bfs_serial: source out of range");
  std::deque<V> queue{source};
  while (!queue.empty()) {
    V const v = queue.front();
    queue.pop_front();
    for (auto const e : g.get_edges(v)) {
      V const nb = g.get_dest_vertex(e);
      if (result.depths[static_cast<std::size_t>(nb)] == V{-1}) {
        result.depths[static_cast<std::size_t>(nb)] =
            result.depths[static_cast<std::size_t>(v)] + 1;
        result.parents[static_cast<std::size_t>(nb)] = v;
        queue.push_back(nb);
        result.iterations =
            std::max(result.iterations,
                     static_cast<std::size_t>(
                         result.depths[static_cast<std::size_t>(nb)]));
      }
    }
  }
  return result;
}

}  // namespace essentials::algorithms
