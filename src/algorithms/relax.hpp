#pragma once

/// \file algorithms/relax.hpp
/// \brief The SSSP family's single relaxation step, extracted once.
///
/// Every shortest-path variant in the framework is built from the same
/// primitive — "does candidate distance d improve dist[v], and if so,
/// commit it" — but until PR 8 each variant carried its own copy:
/// `sssp.hpp` (push BSP + async queue), `sssp_delta.hpp` (light/heavy
/// banded waves), `sssp_async_mp.hpp` (rank-local relax-and-forward), and
/// the serial baselines.  The residual engine (src/residual/) adds a
/// delta-accumulative instantiation of the very same step, so this header
/// is now the single home; the variants differ only in *which array* they
/// relax into and *what they do when the relaxation wins*.
///
/// Two memory models, deliberately separate:
///  - `relax_value` / `relax` — atomic (CAS-loop min via atomic::min) for
///    state shared across lanes.  Listing 4's contract: the pre-update
///    value is returned so the caller can tell whether *its* relaxation
///    won.
///  - `relax_plain` — plain write for single-owner state (rank-local
///    distance arrays in the message-passing variants, serial oracles).

#include <cstddef>

#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// Atomic relaxation: dist[v] = min(dist[v], candidate); returns the value
/// observed immediately before this call's update took effect (Listing 4's
/// contract: `candidate < relax_value(...)` iff this thread improved it).
template <typename W>
inline W relax_value(W* dist, std::size_t v, W candidate) {
  return atomic::min(&dist[v], candidate);
}

/// Atomic relaxation, boolean flavour: true iff this call improved dist[v].
template <typename W>
inline bool relax(W* dist, std::size_t v, W candidate) {
  return candidate < relax_value(dist, v, candidate);
}

/// Single-owner relaxation (no atomics): rank-local distances in the
/// message-passing variants, serial baselines.  True iff improved.
template <typename W>
inline bool relax_plain(W* dist, std::size_t v, W candidate) {
  if (candidate < dist[v]) {
    dist[v] = candidate;
    return true;
  }
  return false;
}

/// The Listing-4 edge condition, shared by `sssp` (push BSP) and the
/// operator-matrix differential tests: snapshot the source distance with an
/// atomic load (another lane may be improving dist[src] concurrently; a
/// stale value only costs a re-relaxation, never correctness), relax the
/// destination, keep the neighbor iff our relaxation won.
template <typename W>
inline auto make_relax_condition(W* dist) {
  return [dist](auto const src, auto const dst, auto const /*edge*/,
                W const weight) {
    W const new_d = atomic::load(&dist[static_cast<std::size_t>(src)]) + weight;
    return relax(dist, static_cast<std::size_t>(dst), new_d);
  };
}

/// Weight-banded variant for delta-stepping: only edges with weight in
/// [lo, hi) participate (light waves pass [0, Δ), the heavy pass [Δ, ∞)).
template <typename W>
inline auto make_banded_relax_condition(W* dist, W lo, W hi) {
  return [dist, lo, hi](auto const src, auto const dst, auto const /*edge*/,
                        W const weight) {
    if (weight < lo || weight >= hi)
      return false;
    W const new_d = atomic::load(&dist[static_cast<std::size_t>(src)]) + weight;
    return relax(dist, static_cast<std::size_t>(dst), new_d);
  };
}

/// One asynchronous expansion: snapshot v's distance, relax every out-edge,
/// and hand each *improved* neighbor to `emit` (queue push, residual
/// injection, ...).  Shared by `sssp_async` and the residual engine's
/// min-plus instantiation (src/residual/algebras.hpp) — the fourth copy
/// this header exists to prevent.
template <typename G, typename W, typename Emit>
inline void relax_out_edges(G const& g, typename G::vertex_type v, W* dist,
                            Emit&& emit) {
  W const d_v = atomic::load(&dist[static_cast<std::size_t>(v)]);
  if (d_v == infinity_v<W>)
    return;
  for (auto const e : g.get_edges(v)) {
    auto const n = g.get_dest_vertex(e);
    if (relax(dist, static_cast<std::size_t>(n), d_v + g.get_edge_weight(e)))
      emit(n);
  }
}

}  // namespace essentials::algorithms
