#pragma once

/// \file algorithms/hits.hpp
/// \brief HITS (hubs & authorities, Kleinberg) — a second fixed-point
/// vertex program: authority scores gather over in-edges (CSC), hub scores
/// gather over out-edges (CSR), normalized each sweep.  Exercises both
/// graph views in one algorithm.

#include <cmath>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/operators/reduce.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

struct hits_options {
  std::size_t max_iterations = 50;
  double tolerance = 1e-10;  ///< L1 delta of (hub + authority) vectors
};

struct hits_result {
  std::vector<double> hubs;
  std::vector<double> authorities;
  std::size_t iterations = 0;
};

/// HITS power iteration; requires both CSR and CSC views.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csr && G::has_csc)
hits_result hits(P policy, G const& g, hits_options opt = {}) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  hits_result result;
  if (n == 0)
    return result;
  result.hubs.assign(n, 1.0);
  result.authorities.assign(n, 1.0);
  std::vector<double> new_auth(n), new_hub(n);

  auto const l2_normalize = [&](std::vector<double>& v) {
    double const sq = operators::reduce_vertices(
        policy, g, 0.0,
        [&v](V i) { return v[static_cast<std::size_t>(i)] *
                           v[static_cast<std::size_t>(i)]; },
        [](double a, double b) { return a + b; });
    double const norm = std::sqrt(sq);
    if (norm == 0.0)
      return;
    operators::compute_vertices(
        policy, g, [&v, norm](V i) { v[static_cast<std::size_t>(i)] /= norm; });
  };

  for (std::size_t iter = 0; iter < opt.max_iterations; ++iter) {
    // Authority(v) = sum of hub scores over in-neighbors (pull, CSC).
    operators::compute_vertices(policy, g, [&](V v) {
      double sum = 0.0;
      for (auto const e : g.get_in_edges(v))
        sum += result.hubs[static_cast<std::size_t>(g.get_in_source_vertex(e))];
      new_auth[static_cast<std::size_t>(v)] = sum;
    });
    l2_normalize(new_auth);

    // Hub(v) = sum of authority scores over out-neighbors (push view, CSR —
    // but read-only gather along out-edges, so no atomics).
    operators::compute_vertices(policy, g, [&](V v) {
      double sum = 0.0;
      for (auto const e : g.get_edges(v))
        sum += new_auth[static_cast<std::size_t>(g.get_dest_vertex(e))];
      new_hub[static_cast<std::size_t>(v)] = sum;
    });
    l2_normalize(new_hub);

    double const delta = operators::reduce_vertices(
        policy, g, 0.0,
        [&](V v) {
          return std::abs(new_auth[static_cast<std::size_t>(v)] -
                          result.authorities[static_cast<std::size_t>(v)]) +
                 std::abs(new_hub[static_cast<std::size_t>(v)] -
                          result.hubs[static_cast<std::size_t>(v)]);
        },
        [](double a, double b) { return a + b; });

    result.authorities.swap(new_auth);
    result.hubs.swap(new_hub);
    ++result.iterations;
    if (delta < opt.tolerance)
      break;
  }
  return result;
}

}  // namespace essentials::algorithms
