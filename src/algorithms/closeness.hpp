#pragma once

/// \file algorithms/closeness.hpp
/// \brief Closeness centrality — exact via repeated BFS, and batched via
/// the 64-lane multi-source BFS, which is the production way to amortize
/// many traversals (and the reason msbfs.hpp exists).
///
/// Harmonic closeness is used (sum of 1/d over reachable pairs): unlike
/// classic closeness it is well-defined on disconnected graphs.

#include <cstddef>
#include <vector>

#include "algorithms/bfs.hpp"
#include "algorithms/msbfs.hpp"
#include "core/execution.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

/// Harmonic closeness of every vertex, computed with batches of 64
/// bit-parallel BFS sweeps.  Exact (all sources).
template <typename P, typename G>
  requires execution::synchronous_policy<P>
std::vector<double> closeness_centrality(P policy, G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::vector<double> closeness(n, 0.0);

  for (std::size_t base = 0; base < n; base += 64) {
    std::vector<V> sources;
    for (std::size_t s = base; s < std::min(n, base + 64); ++s)
      sources.push_back(static_cast<V>(s));
    auto const batch = multi_source_bfs(policy, g, sources);
    // depth[s][v] = d(source_s, v): source_s's closeness gains 1/d for
    // every reachable v (outgoing-distance convention).
    for (std::size_t s = 0; s < sources.size(); ++s) {
      double acc = 0.0;
      for (std::size_t v = 0; v < n; ++v) {
        V const d = batch.depth[s][v];
        if (d > 0)
          acc += 1.0 / static_cast<double>(d);
      }
      closeness[static_cast<std::size_t>(sources[s])] = acc;
    }
  }
  return closeness;
}

/// Reference: one BFS per source (identical result, no bit-parallel
/// batching) — the oracle for the batched version.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
std::vector<double> closeness_centrality_serial(P policy, G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::vector<double> closeness(n, 0.0);
  for (std::size_t s = 0; s < n; ++s) {
    auto const depths = bfs(policy, g, static_cast<V>(s)).depths;
    double acc = 0.0;
    for (std::size_t v = 0; v < n; ++v)
      if (depths[v] > 0)
        acc += 1.0 / static_cast<double>(depths[v]);
    closeness[s] = acc;
  }
  return closeness;
}

}  // namespace essentials::algorithms
