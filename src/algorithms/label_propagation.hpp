#pragma once

/// \file algorithms/label_propagation.hpp
/// \brief Community detection by (semi-)synchronous label propagation
/// (Raghavan et al.): every vertex repeatedly adopts the most frequent
/// label in its neighborhood until labels stabilize or the round cap hits.
///
/// A second fixed-point vertex program (after PageRank) whose convergence
/// condition is a *count of changes*, exercising the reduce-operator path
/// of the loop abstraction.  LPA's output is run-order dependent in
/// general; we make it deterministic by synchronous updates with smallest-
/// label tie-breaking, and tests assert structural properties (permutation
/// invariance of community count on disjoint cliques, stability).
///
/// Undirected semantics: run on a symmetrized graph.

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/operators/reduce.hpp"
#include "core/types.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct lpa_result {
  std::vector<V> labels;
  std::size_t num_communities = 0;
  std::size_t rounds = 0;
};

struct lpa_options {
  std::size_t max_rounds = 50;
};

// GCC's -Wfree-nonheap-object misfires here once enough of the operator
// headers get inlined into the caller: the middle-end loses track of the
// std::vector allocation across the compute/reduce lambdas and claims the
// destructor frees a non-heap pointer with "nonzero offset".  Known inliner
// false positive (GCC PR 108088 family); clang is clean and ASan/UBSan runs
// confirm there is no actual bad free.  Suppress for this function only.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wfree-nonheap-object"
#endif

template <typename P, typename G>
  requires execution::synchronous_policy<P>
lpa_result<typename G::vertex_type> label_propagation_communities(
    P policy, G const& g, lpa_options opt = {}) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  lpa_result<V> result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), V{0});
  std::vector<V> next(result.labels);

  for (std::size_t round = 0; round < opt.max_rounds; ++round) {
    V const* const cur = result.labels.data();
    V* const nxt = next.data();
    operators::compute_vertices(policy, g, [&g, cur, nxt](V v) {
      if (g.get_out_degree(v) == 0) {
        nxt[v] = cur[v];
        return;
      }
      // Most frequent label among the neighborhood *including self* —
      // self-inclusion breaks the 2-cycle oscillation synchronous LPA is
      // prone to (e.g. a lone edge swapping labels forever).  Ties go to
      // the smallest label, making the sweep deterministic.
      std::unordered_map<V, int> histogram;
      ++histogram[cur[v]];
      for (auto const e : g.get_edges(v))
        ++histogram[cur[g.get_dest_vertex(e)]];
      V best = cur[v];
      int best_count = 0;
      for (auto const& [label, count] : histogram) {
        if (count > best_count || (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      nxt[v] = best;
    });

    long long const changed = operators::reduce_vertices(
        policy, g, 0LL,
        [cur, nxt](V v) { return static_cast<long long>(cur[v] != nxt[v]); },
        [](long long a, long long b) { return a + b; });
    result.labels.swap(next);
    ++result.rounds;
    if (changed == 0)
      break;
  }

  std::vector<V> sorted = result.labels;
  std::sort(sorted.begin(), sorted.end());
  result.num_communities = static_cast<std::size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
  return result;
}

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic pop
#endif

/// Modularity of a labeling on an undirected graph (sum over communities of
/// e_c/m - (d_c/2m)^2) — the standard quality score tests use to check that
/// LPA finds real structure on planted-community graphs.
template <typename G, typename V>
double modularity(G const& g, std::vector<V> const& labels) {
  std::size_t const m2 = static_cast<std::size_t>(g.get_num_edges());
  if (m2 == 0)
    return 0.0;
  std::unordered_map<V, double> internal, degree;
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    degree[labels[static_cast<std::size_t>(v)]] +=
        static_cast<double>(g.get_out_degree(v));
    for (auto const e : g.get_edges(v))
      if (labels[static_cast<std::size_t>(g.get_dest_vertex(e))] ==
          labels[static_cast<std::size_t>(v)])
        internal[labels[static_cast<std::size_t>(v)]] += 1.0;
  }
  double q = 0.0;
  double const m2d = static_cast<double>(m2);
  for (auto const& entry : internal)
    q += entry.second / m2d;
  for (auto const& entry : degree)
    q -= (entry.second / m2d) * (entry.second / m2d);
  return q;
}

}  // namespace essentials::algorithms
