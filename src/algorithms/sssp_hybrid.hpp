#pragma once

/// \file algorithms/sssp_hybrid.hpp
/// \brief Hierarchical (hybrid) SSSP: message passing *between* ranks,
/// shared-memory parallelism *inside* each rank — the deployment the paper
/// motivates in §III-B: "Expressing both models under the same framework
/// can potentially allow for performance benefits in hierarchical
/// distributed systems."
///
/// Structure per superstep, per rank:
///   1. the rank's local active set is expanded with the *shared-memory
///      parallel* advance (its own thread pool, lane-buffered appends);
///   2. relaxations of remotely-owned vertices are shipped as
///      (vertex, distance) messages;
///   3. an all-reduce of the global active count closes the superstep.
/// Steps 1 uses exactly the same operator and vertex program as the pure
/// shared-memory SSSP — the composition, not new code, is the point.

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <functional>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/filter.hpp"
#include "algorithms/sssp.hpp"
#include "mpsim/communicator.hpp"
#include "parallel/atomics.hpp"
#include "parallel/thread_pool.hpp"

namespace essentials::algorithms {

/// Hybrid SSSP over `num_ranks` message-passing ranks, each running a
/// `threads_per_rank`-wide shared-memory pool for its local expansion.
/// `owner` must agree across ranks (default: v mod P).
template <typename G>
sssp_result<typename G::weight_type> sssp_hybrid(
    G const& g, typename G::vertex_type source, int num_ranks = 2,
    std::size_t threads_per_rank = 2,
    std::function<int(typename G::vertex_type)> owner = {}) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  static_assert(sizeof(W) <= sizeof(std::uint32_t),
                "weights packed into u64 message words");
  expects(source >= 0 && source < g.get_num_vertices(),
          "sssp_hybrid: source out of range");
  if (!owner)
    owner = [num_ranks](V v) { return static_cast<int>(v % num_ranks); };

  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  sssp_result<W> result;
  result.distances.assign(n, infinity_v<W>);
  std::size_t iterations = 0;

  auto const pack = [](V v, W d) {
    std::uint32_t bits;
    std::memcpy(&bits, &d, sizeof(bits));
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(v)) << 32) |
           bits;
  };
  auto const unpack_vertex = [](std::uint64_t word) {
    return static_cast<V>(word >> 32);
  };
  auto const unpack_weight = [](std::uint64_t word) {
    W d;
    auto const bits = static_cast<std::uint32_t>(word);
    std::memcpy(&d, &bits, sizeof(d));
    return d;
  };
  constexpr int kTagGather = 1 << 21;

  mpsim::communicator::run(num_ranks, [&](mpsim::communicator& comm,
                                          int rank) {
    // Intra-rank shared-memory machinery: a private pool + policy.
    parallel::thread_pool pool(threads_per_rank);
    execution::parallel_policy par(pool);

    std::vector<W> dist(n, infinity_v<W>);
    W* const d = dist.data();
    frontier::sparse_frontier<V> active;
    if (owner(source) == rank) {
      dist[static_cast<std::size_t>(source)] = W{0};
      active.add_vertex(source);
    }

    std::vector<std::vector<std::uint64_t>> outgoing(
        static_cast<std::size_t>(comm.size()));
    int superstep = 0;
    for (;;) {
      // (1) Shared-memory parallel expansion of the local active set —
      // the Listing 4 condition, unchanged.  Remote relaxations are
      // recorded optimistically into dist as well (a cheap local cache)
      // so repeated discoveries within this rank self-suppress.
      auto const relaxed = operators::neighbors_expand(
          par, g, active, [d](V const src, V const dst, E, W const w) {
            W const new_d = d[src] + w;
            return new_d < atomic::min(&d[dst], new_d);
          });

      // (2) Partition the relaxed set: locally-owned -> next active,
      // remote -> messages to owners.
      frontier::sparse_frontier<V> next;
      for (V const v : relaxed.active()) {
        int const dst_rank = owner(v);
        if (dst_rank == rank)
          next.add_vertex(v);
        else
          outgoing[static_cast<std::size_t>(dst_rank)].push_back(
              pack(v, d[static_cast<std::size_t>(v)]));
      }
      int const tag = 2 * superstep;
      for (int dst = 0; dst < comm.size(); ++dst) {
        if (dst == rank)
          continue;
        comm.send(rank, dst, tag,
                  std::move(outgoing[static_cast<std::size_t>(dst)]));
        outgoing[static_cast<std::size_t>(dst)].clear();
      }
      for (int i = 0; i < comm.size() - 1; ++i) {
        mpsim::message_t msg;
        if (!comm.recv(rank, tag, msg))
          return;
        for (std::uint64_t const word : msg.payload) {
          V const v = unpack_vertex(word);
          W const nd = unpack_weight(word);
          if (nd < dist[static_cast<std::size_t>(v)]) {
            dist[static_cast<std::size_t>(v)] = nd;
            next.add_vertex(v);
          }
        }
      }
      operators::uniquify(par, next, n);
      active = std::move(next);

      // (3) Global convergence: Listing 4's `while (f.size() != 0)` as an
      // all-reduce.
      auto const global = comm.all_reduce_sum(
          rank, static_cast<std::uint64_t>(active.size()));
      ++superstep;
      if (global == 0)
        break;
    }

    // Gather owned distances at rank 0.
    std::vector<std::uint64_t> mine;
    for (std::size_t v = 0; v < n; ++v)
      if (owner(static_cast<V>(v)) == rank && dist[v] != infinity_v<W>)
        mine.push_back(pack(static_cast<V>(v), dist[v]));
    auto const gathered = comm.gather(rank, 0, kTagGather, std::move(mine));
    if (rank == 0) {
      for (std::uint64_t const word : gathered)
        result.distances[static_cast<std::size_t>(unpack_vertex(word))] =
            unpack_weight(word);
      iterations = static_cast<std::size_t>(superstep);
    }
  });

  result.iterations = iterations;
  return result;
}

}  // namespace essentials::algorithms
