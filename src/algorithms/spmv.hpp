#pragma once

/// \file algorithms/spmv.hpp
/// \brief Sparse matrix-vector multiply over the graph views — the bridge
/// the paper's overview draws to linear-algebra-based graph analytics
/// ("the duality of graphs and sparse matrices can be exploited even in the
/// native-graph approach").  y = A x with A the graph's adjacency (CSR row
/// gather) or its transpose (CSC column scatter).

#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

/// y[v] = sum over out-edges (v, u): w(v,u) * x[u] — row-parallel CSR
/// gather, no atomics.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csr)
std::vector<double> spmv(P policy, G const& g, std::vector<double> const& x) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  expects(x.size() == n, "spmv: dimension mismatch");
  std::vector<double> y(n, 0.0);
  operators::compute_vertices(policy, g, [&](V v) {
    double sum = 0.0;
    for (auto const e : g.get_edges(v))
      sum += static_cast<double>(g.get_edge_weight(e)) *
             x[static_cast<std::size_t>(g.get_dest_vertex(e))];
    y[static_cast<std::size_t>(v)] = sum;
  });
  return y;
}

/// y = A^T x via CSR scatter with atomic adds — the push formulation, same
/// result as spmv over the transposed graph.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_csr)
std::vector<double> spmv_transpose(P policy, G const& g,
                                   std::vector<double> const& x) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  expects(x.size() == n, "spmv_transpose: dimension mismatch");
  std::vector<double> y(n, 0.0);
  double* const out = y.data();
  operators::compute_vertices(policy, g, [&, out](V v) {
    double const xv = x[static_cast<std::size_t>(v)];
    for (auto const e : g.get_edges(v))
      atomic::add(&out[static_cast<std::size_t>(g.get_dest_vertex(e))],
                  static_cast<double>(g.get_edge_weight(e)) * xv);
  });
  return y;
}

/// Serial reference.
template <typename G>
std::vector<double> spmv_serial(G const& g, std::vector<double> const& x) {
  return spmv(execution::seq, g, x);
}

}  // namespace essentials::algorithms
