#pragma once

/// \file algorithms/mst.hpp
/// \brief Minimum spanning forest: parallel Borůvka (the GPU-favoured MST,
/// and a Gunrock/essentials app) and Kruskal as the serial oracle.
///
/// Borůvka rounds: every component selects its minimum-weight outgoing
/// edge (parallel over vertices, atomic-min into the component root's
/// slot), selected edges join the forest and hook components together,
/// pointer jumping flattens the hooks.  O(log V) rounds, each round built
/// from compute/atomic primitives — another algorithm expressed with the
/// essential components only.
///
/// Input must be undirected (symmetric CSR).  Ties are broken by edge id,
/// making the forest deterministic even with duplicate weights (and
/// preventing hook cycles).

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <numeric>
#include <utility>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
struct mst_result {
  /// Chosen edges as (src, dst) pairs in CSR edge-id order; each tree edge
  /// appears once (in one of its two directions).
  std::vector<std::pair<V, V>> edges;
  double total_weight = 0.0;
  std::size_t num_trees = 0;  ///< number of components in the forest
  std::size_t rounds = 0;
};

namespace detail {

/// Pack (weight, edge id) into one u64 so atomic-min selects the lightest
/// edge with deterministic id tie-breaking.  Weights must be >= 0 (IEEE
/// float order == integer order for non-negative floats).
inline std::uint64_t pack_choice(float w, std::uint32_t e) {
  std::uint32_t bits;
  static_assert(sizeof(bits) == sizeof(w));
  std::memcpy(&bits, &w, sizeof(bits));
  return (static_cast<std::uint64_t>(bits) << 32) | e;
}
inline std::uint32_t unpack_edge(std::uint64_t packed) {
  return static_cast<std::uint32_t>(packed);
}

}  // namespace detail

/// Parallel Borůvka minimum spanning forest.  Weights must be
/// non-negative; the graph must be symmetric.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
mst_result<typename G::vertex_type, typename G::edge_type,
           typename G::weight_type>
boruvka_mst(P policy, G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  mst_result<V, E, typename G::weight_type> result;
  if (n == 0)
    return result;

  std::vector<V> parent(n);
  std::iota(parent.begin(), parent.end(), V{0});
  V* const par = parent.data();
  auto const find = [par](V x) {
    while (par[static_cast<std::size_t>(x)] != x)
      x = par[static_cast<std::size_t>(x)];
    return x;
  };

  constexpr std::uint64_t kNone = ~std::uint64_t{0};
  std::vector<std::uint64_t> choice(n, kNone);
  std::uint64_t* const pick = choice.data();

  for (;;) {
    // Phase 1: every vertex offers its lightest cross-component edge to
    // its component root (atomic-min on the packed (weight, edge) key).
    std::fill(choice.begin(), choice.end(), kNone);
    operators::compute_vertices(policy, g, [&g, par, pick, find](V v) {
      V const root_v = find(v);
      for (auto const e : g.get_edges(v)) {
        V const u = g.get_dest_vertex(e);
        if (find(u) == root_v)
          continue;  // internal edge
        auto const key = detail::pack_choice(
            static_cast<float>(g.get_edge_weight(e)),
            static_cast<std::uint32_t>(e));
        atomic::min(&pick[static_cast<std::size_t>(root_v)], key);
      }
    });

    // Phase 2 (serial, O(V)): apply the chosen edges — dedupe mutual
    // picks, add to the forest, hook roots.
    bool hooked = false;
    for (std::size_t r = 0; r < n; ++r) {
      if (choice[r] == kNone)
        continue;
      E const e = static_cast<E>(detail::unpack_edge(choice[r]));
      V const src = g.get_source_vertex(e);
      V const dst = g.get_dest_vertex(e);
      V const a = find(src);
      V const b = find(dst);
      if (a == b)
        continue;  // the mirrored pick already merged these components
      result.edges.emplace_back(src, dst);
      result.total_weight += static_cast<double>(g.get_edge_weight(e));
      // Hook the larger root under the smaller (acyclic by ordering).
      if (a < b)
        parent[static_cast<std::size_t>(b)] = a;
      else
        parent[static_cast<std::size_t>(a)] = b;
      hooked = true;
    }
    ++result.rounds;
    if (!hooked)
      break;

    // Phase 3: pointer jumping to flatten before the next round.
    for (std::size_t v = 0; v < n; ++v) {
      V root = find(static_cast<V>(v));
      parent[v] = root;
    }
  }

  // Tree count = distinct roots.
  std::size_t roots = 0;
  for (std::size_t v = 0; v < n; ++v)
    roots += (parent[v] == static_cast<V>(v));
  result.num_trees = roots;
  return result;
}

/// Kruskal with union-find — the serial oracle.  Returns the same
/// total_weight for any MST when weights are distinct; with ties the
/// total weight is still unique (standard exchange argument), so tests
/// compare weights, not edge sets.
template <typename G>
mst_result<typename G::vertex_type, typename G::edge_type,
           typename G::weight_type>
kruskal_mst(G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  mst_result<V, E, typename G::weight_type> result;

  std::vector<E> order(static_cast<std::size_t>(g.get_num_edges()));
  std::iota(order.begin(), order.end(), E{0});
  std::stable_sort(order.begin(), order.end(), [&g](E a, E b) {
    return g.get_edge_weight(a) < g.get_edge_weight(b);
  });

  std::vector<V> parent(n);
  std::iota(parent.begin(), parent.end(), V{0});
  auto const find = [&parent](V x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  for (E const e : order) {
    V const u = g.get_source_vertex(e);
    V const v = g.get_dest_vertex(e);
    V const ru = find(u);
    V const rv = find(v);
    if (ru == rv)
      continue;
    parent[static_cast<std::size_t>(std::max(ru, rv))] = std::min(ru, rv);
    result.edges.emplace_back(u, v);
    result.total_weight += static_cast<double>(g.get_edge_weight(e));
  }
  std::size_t roots = 0;
  for (std::size_t v = 0; v < n; ++v)
    roots += (find(static_cast<V>(v)) == static_cast<V>(v));
  result.num_trees = roots;
  result.rounds = 1;
  return result;
}

/// Forest validity: edges exist in the graph, are acyclic, and the forest
/// spans — edge count == V - num_trees.
template <typename G, typename V>
bool is_valid_spanning_forest(G const& g,
                              std::vector<std::pair<V, V>> const& edges,
                              std::size_t num_trees) {
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  if (edges.size() + num_trees != n)
    return false;
  std::vector<V> parent(n);
  std::iota(parent.begin(), parent.end(), V{0});
  auto const find = [&parent](V x) {
    while (parent[static_cast<std::size_t>(x)] != x)
      x = parent[static_cast<std::size_t>(x)];
    return x;
  };
  for (auto const& [u, v] : edges) {
    bool exists = false;
    for (auto const e : g.get_edges(u))
      exists |= (g.get_dest_vertex(e) == v);
    if (!exists)
      return false;
    V const ru = find(u);
    V const rv = find(v);
    if (ru == rv)
      return false;  // cycle
    parent[static_cast<std::size_t>(ru)] = rv;
  }
  return true;
}

}  // namespace essentials::algorithms
