#pragma once

/// \file algorithms/kcore.hpp
/// \brief k-core decomposition (coreness of every vertex) by iterative
/// peeling, expressed as a frontier program: the frontier holds the
/// vertices whose residual degree just dropped below the current k.
///
/// Undirected semantics: run on a symmetrized, deduplicated graph.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/filter.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct kcore_result {
  std::vector<V> coreness;  ///< largest k such that v is in the k-core
  V max_core = 0;
};

/// Peeling k-core: for k = 1, 2, ...: repeatedly remove vertices with
/// residual degree < k; removed vertices get coreness k-1.  The inner
/// removal wave is a frontier advance whose condition atomically decrements
/// the neighbor's residual degree and activates it when it falls below k.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
kcore_result<typename G::vertex_type> kcore(P policy, G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  kcore_result<V> result;
  result.coreness.assign(n, V{0});

  std::vector<E> degree(n);
  for (std::size_t v = 0; v < n; ++v)
    degree[v] = g.get_out_degree(static_cast<V>(v));
  E* const deg = degree.data();
  std::vector<char> removed(n, 0);
  char* const gone = removed.data();

  std::size_t remaining = n;
  V k = 1;
  while (remaining > 0) {
    // Seed wave: all live vertices with degree < k.
    frontier::sparse_frontier<V> wave;
    for (std::size_t v = 0; v < n; ++v)
      if (!gone[v] && deg[v] < static_cast<E>(k))
        wave.active().push_back(static_cast<V>(v));

    while (!wave.empty()) {
      // Claim this wave's vertices (a vertex can be activated by several
      // neighbors in one advance).
      frontier::sparse_frontier<V> claimed;
      for (V const v : wave.active()) {
        if (!gone[static_cast<std::size_t>(v)]) {
          gone[static_cast<std::size_t>(v)] = 1;
          result.coreness[static_cast<std::size_t>(v)] = k - 1;
          claimed.active().push_back(v);
        }
      }
      remaining -= claimed.size();

      wave = operators::neighbors_expand(
          policy, g, claimed,
          [deg, gone, k](V const /*src*/, V const dst, E const, W const) {
            if (atomic::load(&gone[dst]) != 0)
              return false;
            // Decrement the residual degree; activate on crossing below k.
            E const before = atomic::add(&deg[dst], E{-1});
            return before == static_cast<E>(k);  // crossed k -> k-1
          });
      if constexpr (std::decay_t<P>::is_parallel)
        operators::uniquify(policy, wave, n);
      else
        operators::uniquify(execution::seq, wave);
    }
    ++k;
  }
  for (std::size_t v = 0; v < n; ++v)
    result.max_core = std::max(result.max_core, result.coreness[v]);
  return result;
}

/// Serial peeling oracle (bucket-free, O(V^2 + E) worst case — test sizes).
template <typename G>
kcore_result<typename G::vertex_type> kcore_serial(G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  kcore_result<V> result;
  result.coreness.assign(n, V{0});
  std::vector<E> deg(n);
  for (std::size_t v = 0; v < n; ++v)
    deg[v] = g.get_out_degree(static_cast<V>(v));
  std::vector<char> gone(n, 0);

  std::size_t remaining = n;
  V k = 1;
  while (remaining > 0) {
    bool again = true;
    while (again) {
      again = false;
      for (std::size_t v = 0; v < n; ++v) {
        if (gone[v] || deg[v] >= static_cast<E>(k))
          continue;
        gone[v] = 1;
        result.coreness[v] = k - 1;
        --remaining;
        again = true;
        for (auto const e : g.get_edges(static_cast<V>(v))) {
          V const nb = g.get_dest_vertex(e);
          if (!gone[static_cast<std::size_t>(nb)])
            --deg[static_cast<std::size_t>(nb)];
        }
      }
    }
    ++k;
  }
  for (std::size_t v = 0; v < n; ++v)
    result.max_core = std::max(result.max_core, result.coreness[v]);
  return result;
}

}  // namespace essentials::algorithms
