#pragma once

/// \file algorithms/clustering.hpp
/// \brief Clustering coefficients (local per-vertex and global) built on
/// the triangle-counting intersection kernel — the standard "how clumpy is
/// this graph" analytics the community-detection example reports.
///
/// Undirected semantics: run on a symmetrized, deduplicated, loop-free
/// graph with sorted adjacency (from_coo's canonical order).

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/execution.hpp"
#include "core/operators/compute.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

struct clustering_result {
  std::vector<double> local;  ///< triangles(v) / C(deg(v), 2); 0 if deg < 2
  double global = 0.0;        ///< closed wedges / all wedges
  double average_local = 0.0; ///< Watts–Strogatz clustering coefficient
};

/// Per-vertex triangle membership: how many triangles contain v.  Each
/// triangle {a < b < c} is discovered once (at its smallest edge) and
/// credited to all three corners with atomic adds; vertices are scanned in
/// parallel.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
std::vector<std::uint64_t> triangles_per_vertex(P policy, G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  std::vector<std::uint64_t> membership(n, 0);
  std::uint64_t* const mem = membership.data();

  operators::compute_vertices(policy, g, [&g, mem](V a) {
    for (auto const e : g.get_edges(a)) {
      V const b = g.get_dest_vertex(e);
      if (b <= a)
        continue;
      // Common neighbors c > b complete triangles {a, b, c}: sorted-merge
      // intersection of a's and b's adjacency restricted to ids > b.
      auto const ae = g.get_edges(a);
      auto const be = g.get_edges(b);
      auto ai = ae.begin();
      auto bi = be.begin();
      while (ai != ae.end() && bi != be.end()) {
        V const x = g.get_dest_vertex(*ai);
        V const y = g.get_dest_vertex(*bi);
        if (x <= b) {
          ++ai;
          continue;
        }
        if (y <= b) {
          ++bi;
          continue;
        }
        if (x == y) {
          atomic::add(&mem[a], std::uint64_t{1});
          atomic::add(&mem[b], std::uint64_t{1});
          atomic::add(&mem[x], std::uint64_t{1});
          ++ai;
          ++bi;
        } else if (x < y) {
          ++ai;
        } else {
          ++bi;
        }
      }
    }
  });
  return membership;
}

/// Local + global clustering coefficients.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
clustering_result clustering_coefficients(P policy, G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  clustering_result result;
  result.local.assign(n, 0.0);
  auto const membership = triangles_per_vertex(policy, g);

  double wedges_total = 0.0;
  double local_sum = 0.0;
  std::uint64_t closed = 0;
  for (V v = 0; v < g.get_num_vertices(); ++v) {
    auto const deg = static_cast<double>(g.get_out_degree(v));
    double const wedges = deg * (deg - 1.0) / 2.0;
    wedges_total += wedges;
    closed += membership[static_cast<std::size_t>(v)];
    if (wedges > 0.0) {
      result.local[static_cast<std::size_t>(v)] =
          static_cast<double>(membership[static_cast<std::size_t>(v)]) /
          wedges;
      local_sum += result.local[static_cast<std::size_t>(v)];
    }
  }
  result.average_local = n == 0 ? 0.0 : local_sum / static_cast<double>(n);
  result.global =
      wedges_total == 0.0 ? 0.0
                          : static_cast<double>(closed) / wedges_total;
  return result;
}

}  // namespace essentials::algorithms
