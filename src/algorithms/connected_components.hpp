#pragma once

/// \file algorithms/connected_components.hpp
/// \brief Connected components (undirected semantics: run on a symmetrized
/// graph) — label propagation expressed with the framework's operators,
/// hook/pointer-jump (Shiloach–Vishkin flavoured) as the fast parallel
/// alternative, and serial union-find as the oracle.

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <vector>

#include "core/enactor.hpp"
#include "core/execution.hpp"
#include "core/frontier/frontier.hpp"
#include "core/operators/advance.hpp"
#include "core/operators/compute.hpp"
#include "core/operators/filter.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"

namespace essentials::algorithms {

template <typename V = vertex_t>
struct cc_result {
  std::vector<V> labels;  ///< labels[v] == labels[u] iff same component
  std::size_t num_components = 0;
  std::size_t iterations = 0;
};

namespace detail {

template <typename V>
std::size_t count_components(std::vector<V> const& labels) {
  std::vector<V> sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  return static_cast<std::size_t>(
      std::unique(sorted.begin(), sorted.end()) - sorted.begin());
}

}  // namespace detail

/// Label propagation: every vertex starts with its own id; active vertices
/// push their label along edges with atomic-min; vertices whose label
/// improved join the next frontier.  Pure operators + enactor — the
/// "algorithm as frontier program" formulation.
template <typename P, typename G>
  requires execution::synchronous_policy<P>
cc_result<typename G::vertex_type> connected_components(P policy,
                                                        G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  using W = typename G::weight_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  cc_result<V> result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), V{0});
  V* const labels = result.labels.data();

  // All vertices start active.
  std::vector<V> all(n);
  std::iota(all.begin(), all.end(), V{0});
  frontier::sparse_frontier<V> f(std::move(all));

  auto const stats = enactor::bsp_loop(
      std::move(f),
      [&](frontier::sparse_frontier<V> in, std::size_t /*iteration*/) {
        auto out = operators::neighbors_expand(
            policy, g, in,
            [labels](V const src, V const dst, E const, W const) {
              V const l = atomic::load(&labels[src]);
              return l < atomic::min(&labels[dst], l);
            });
        if constexpr (std::decay_t<P>::is_parallel)
          operators::uniquify(policy, out, n);
        else
          operators::uniquify(policy, out);
        return out;
      },
      enactor::frontier_empty{});

  result.iterations = stats.iterations;
  result.num_components = detail::count_components(result.labels);
  return result;
}

/// Hook + pointer-jumping (Shiloach–Vishkin style): alternating rounds of
/// edge hooks (parent[max] = min over each edge) and parallel pointer
/// jumping until the parent forest is flat.  Converges in O(log V) rounds —
/// the classic PRAM CC, here on the COO view.
template <typename P, typename G>
  requires execution::synchronous_policy<P> && (G::has_coo)
cc_result<typename G::vertex_type> connected_components_hook(P policy,
                                                             G const& g) {
  using V = typename G::vertex_type;
  using E = typename G::edge_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  cc_result<V> result;
  result.labels.resize(n);
  std::iota(result.labels.begin(), result.labels.end(), V{0});
  V* const parent = result.labels.data();

  E const m = g.coo_num_edges();
  bool changed = true;
  while (changed) {
    changed = false;
    // Hook: for every edge (edge-parallel over the COO view), attach the
    // larger root under the smaller.
    std::vector<char> any(1, 0);
    char* const any_flag = any.data();
    auto const hook_body = [&](std::size_t i) {
      E const e = static_cast<E>(i);
      V const u = g.coo_source(e);
      V const v = g.coo_dest(e);
      V pu = atomic::load(&parent[u]);
      V pv = atomic::load(&parent[v]);
      if (pu == pv)
        return;
      V const hi = pu > pv ? pu : pv;
      V const lo = pu > pv ? pv : pu;
      // Hook hi's root under lo when hi is still a root (parent[hi]==hi).
      if (atomic::cas(&parent[hi], hi, lo) == hi)
        atomic::store(any_flag, char{1});
    };
    if constexpr (std::decay_t<P>::is_parallel) {
      parallel::parallel_for(policy.pool(), std::size_t{0},
                             static_cast<std::size_t>(m), hook_body,
                             policy.grain);
    } else {
      for (std::size_t i = 0; i < static_cast<std::size_t>(m); ++i)
        hook_body(i);
    }
    changed = any[0] != 0;

    // Pointer jumping: flatten every chain to its root.
    auto const jump_body = [&](std::size_t vi) {
      V p = parent[vi];
      while (p != parent[static_cast<std::size_t>(p)])
        p = parent[static_cast<std::size_t>(p)];
      parent[vi] = p;
    };
    if constexpr (std::decay_t<P>::is_parallel) {
      parallel::parallel_for(policy.pool(), std::size_t{0}, n, jump_body,
                             policy.grain);
    } else {
      for (std::size_t vi = 0; vi < n; ++vi)
        jump_body(vi);
    }
    ++result.iterations;
  }
  result.num_components = detail::count_components(result.labels);
  return result;
}

/// Serial union-find (path halving + union by label minimum) — the oracle.
template <typename G>
cc_result<typename G::vertex_type> connected_components_serial(G const& g) {
  using V = typename G::vertex_type;
  std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
  cc_result<V> result;
  std::vector<V> parent(n);
  std::iota(parent.begin(), parent.end(), V{0});

  auto const find = [&parent](V x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(
              parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };

  for (V u = 0; u < g.get_num_vertices(); ++u) {
    for (auto const e : g.get_edges(u)) {
      V const v = g.get_dest_vertex(e);
      V const ru = find(u);
      V const rv = find(v);
      if (ru != rv) {
        // Union by minimum label so results are canonical.
        if (ru < rv)
          parent[static_cast<std::size_t>(rv)] = ru;
        else
          parent[static_cast<std::size_t>(ru)] = rv;
      }
    }
  }
  result.labels.resize(n);
  for (std::size_t v = 0; v < n; ++v)
    result.labels[v] = find(static_cast<V>(v));
  result.num_components = detail::count_components(result.labels);
  return result;
}

}  // namespace essentials::algorithms
