#pragma once

/// \file residual/algebra.hpp
/// \brief The accumulator algebra — the contract that makes one residual
/// engine serve SSSP, PageRank/PPR, and label spread.
///
/// Maiter's delta-accumulative model: each vertex carries `(value, delta)`
/// where `delta` is the not-yet-applied residual.  Processing a vertex
/// *claims* its delta (atomically swapping in the identity), folds it into
/// the value with `combine`, and `propagate`s a share of the claimed delta
/// into each out-neighbor's delta via `accumulate`.  Convergence is "every
/// outstanding delta is negligible".  Two algebra families satisfy the
/// contract:
///
///  - **min-lattices** (SSSP, BFS reachability): identity = ∞, combine =
///    min, accumulate = atomic min.  Claimed deltas are *absorbed* — the
///    share depends only on the new value (`new_value + weight`), so
///    re-deliveries are idempotent and the fixed point is the unique
///    lattice bottom (the bit-identity argument the incremental warm path
///    already relies on).
///  - **weighted sums** (PageRank, PPR, adsorption spread): identity = 0,
///    combine = +, accumulate = atomic add.  The share is a linear
///    function of the claimed delta (`damping·Δ/deg`), so total residual
///    mass is conserved until it decays below ε.
///
/// The algebra is an *object*, not a traits class — PageRank carries its
/// damping factor, PPR its teleport probability.  `residual_algebra`
/// below pins the duck type; residual/algebras.hpp holds the
/// instantiations and residual/state.hpp the engine that runs them.

#include <atomic>
#include <concepts>
#include <cstddef>
#include <type_traits>

namespace essentials::residual {

namespace detail {

// The engine's cross-location ordering argument (see residual/state.hpp:
// producers accumulate-then-claim-flag, consumers clear-flag-then-drain)
// needs a single total order over flag and delta operations, so every op
// that participates is a seq_cst RMW — the acq_rel helpers in
// parallel/atomics.hpp are not strong enough for the lost-wakeup proof.

/// seq_cst fetch-min on a plain slot; returns the pre-update value.
template <typename T>
T fetch_min_seq(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T observed = ref.load(std::memory_order_seq_cst);
  while (value < observed) {
    if (ref.compare_exchange_weak(observed, value,
                                  std::memory_order_seq_cst))
      return observed;
  }
  return observed;
}

/// seq_cst fetch-add on a plain slot (CAS loop — works for double);
/// returns the pre-update value.
template <typename T>
T fetch_add_seq(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  T observed = ref.load(std::memory_order_seq_cst);
  while (!ref.compare_exchange_weak(observed, observed + value,
                                    std::memory_order_seq_cst)) {
  }
  return observed;
}

/// seq_cst exchange (the consumer's delta claim).
template <typename T>
T exchange_seq(T* address, T value) {
  std::atomic_ref<T> ref(*address);
  return ref.exchange(value, std::memory_order_seq_cst);
}

/// Producer side of the scheduling handshake: claim the queued flag
/// (0 → 1).  True iff this caller now owes the vertex a staging.
inline bool try_claim(unsigned char* flag) {
  unsigned char expected = 0;
  return std::atomic_ref<unsigned char>(*flag).compare_exchange_strong(
      expected, 1, std::memory_order_seq_cst);
}

/// Consumer side: release the flag *before* draining the delta, so any
/// producer whose accumulate lands after our drain finds the flag free
/// and re-stages the vertex (the lost-wakeup argument in state.hpp).
inline void clear_claim(unsigned char* flag) {
  std::atomic_ref<unsigned char>(*flag).exchange(0,
                                                 std::memory_order_seq_cst);
}

}  // namespace detail

/// The duck type every residual algebra satisfies.  `W` is the graph's
/// edge-weight type (shares may depend on it).
template <typename A, typename W = float>
concept residual_algebra = requires(A const a, typename A::value_type v,
                                    typename A::value_type d,
                                    typename A::value_type* slot, W w,
                                    std::size_t n, double eps) {
  typename A::value_type;
  /// Neutral delta: claiming swaps it in; accumulating it is a no-op.
  { a.identity() } -> std::convertible_to<typename A::value_type>;
  /// Fold a claimed delta into the value.
  { a.combine(v, d) } -> std::convertible_to<typename A::value_type>;
  /// Atomically merge a share into a neighbour's delta slot; returns the
  /// pre-update delta (the caller's staleness/improvement witness).
  { a.accumulate(slot, d) } -> std::convertible_to<typename A::value_type>;
  /// The share delivered along one out-edge after a claim produced
  /// `new_value` from `d`, over an edge of weight `w` from a vertex of
  /// out-degree `n`.
  { a.propagate(d, v, w, n) } -> std::convertible_to<typename A::value_type>;
  /// Scheduling priority of a vertex with this (value, pending-delta)
  /// pair; larger = more urgent, <= 0 = not worth scheduling.
  { a.magnitude(v, d) } -> std::convertible_to<double>;
  /// Smallest magnitude worth staging when targeting total residual < eps
  /// over n vertices (sum algebras: eps/(2n), so a drained scheduler
  /// bounds the unscheduled mass by eps/2; min-lattices: 0 — every
  /// improvement must eventually apply or the fixed point is wrong).
  { a.schedule_floor(n, eps) } -> std::convertible_to<double>;
  /// Residual mass this delta contributes to the striped counter (sum
  /// algebras: |d|; min-lattices: 0 — their convergence is bucket drain).
  { a.mass(d) } -> std::convertible_to<double>;
  /// Min-lattices: stale/duplicate deliveries are absorbed, insert-only
  /// graph deltas may be injected at the changed endpoints alone.
  { std::bool_constant<A::monotone>{} };
  /// True when mass() accounting is exact, enabling the `total < ε`
  /// early-convergence stop.
  { std::bool_constant<A::exact_mass>{} };
};

}  // namespace essentials::residual
