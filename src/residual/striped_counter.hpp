#pragma once

/// \file residual/striped_counter.hpp
/// \brief Cache-line-striped residual mass counter — the convergence
/// detector of the residual engine.
///
/// Every accumulate adds the injected share's mass to one stripe, every
/// claim subtracts the mass it drained; the sum over stripes is the total
/// outstanding residual, and `total < ε` is the engine's convergence
/// condition for sum algebras (PageRank/PPR/label spread).  A single
/// atomic<double> would serialize every relaxation of a hot run on one
/// cache line; striping by lane id makes the add O(1) contention-free and
/// moves the cost to the (rare, coordinator-only) `total()` scan — the
/// same trade the work-stealing pool's completion latch makes.
///
/// The counter is *exact* for sum algebras (each unit of mass is added
/// exactly once and subtracted exactly once) and merely a monitoring
/// signal for min-lattices, whose algebras report zero mass — there,
/// convergence is bucket drain (see residual/state.hpp).

#include <atomic>
#include <cstddef>
#include <vector>

#include "parallel/lane_buffers.hpp"  // cache_line_size

namespace essentials::residual {

class striped_counter {
 public:
  explicit striped_counter(std::size_t stripes = 16)
      : stripes_(stripes ? stripes : 1) {}

  /// Add (possibly negative) mass to the stripe selected by `hint` —
  /// callers pass their pool lane id so steady-state adds never collide.
  void add(double mass, std::size_t hint) noexcept {
    auto& slot = stripes_[hint % stripes_.size()].value;
    double observed = slot.load(std::memory_order_relaxed);
    while (!slot.compare_exchange_weak(observed, observed + mass,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Racy sum over stripes.  Exact once producers are quiescent (between
  /// waves); a monitoring approximation while they run — both uses are
  /// read-mostly, which is why add() can stay fully relaxed.
  double total() const noexcept {
    double sum = 0.0;
    for (auto const& s : stripes_)
      sum += s.value.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() noexcept {
    for (auto& s : stripes_)
      s.value.store(0.0, std::memory_order_relaxed);
  }

 private:
  struct alignas(parallel::cache_line_size) stripe_t {
    std::atomic<double> value{0.0};
  };
  std::vector<stripe_t> stripes_;
};

}  // namespace essentials::residual
