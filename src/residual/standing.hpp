#pragma once

/// \file residual/standing.hpp
/// \brief Standing queries: residual engines kept converged across epoch
/// publishes — the serving-layer payoff of the delta-accumulative model.
///
/// A standing query owns a `residual_state` for one (graph name, algebra)
/// pair.  On registration it seeds and converges against the pinned
/// snapshot (the one cold cost it ever pays).  From then on, every
/// `graph_registry` publish of that name flows in as `(pinned snapshot,
/// edge delta)` and is absorbed **in place**:
///
///   publish(name, dyn) ──► engine fan-out ──► on_publish(pin, delta)
///        │                                         │
///        │                      ┌──────────────────┴─────────────────┐
///        │                      │ monotone + insert-only delta:      │
///        │                      │   inject at changed endpoints only │
///        │                      │ sum algebra + base vector:         │
///        │                      │   exact one-edge-pass rebase       │
///        │                      │ else: reset + reseed (fallback)    │
///        │                      └──────────────────┬─────────────────┘
///        │                                         ▼
///        └── queries keep reading ...      reconverge(new snapshot)
///            the previous values                   │
///                                        publish values snapshot
///
/// No job is scheduled, no queue is entered, no cache row is written: the
/// re-convergence cost is proportional to the residuals the delta injected
/// — microseconds for small deltas (BENCH_residual.json) versus the warm
/// path's full restart.
///
/// Threading: with `service_thread` (default) a dedicated runner absorbs
/// publishes asynchronously — the publisher only enqueues — coalescing
/// bursts of epochs into one re-convergence, and publishes an immutable
/// values snapshot per processed epoch.  With `service_thread == false`
/// the publisher (or test) thread applies updates inline and reads
/// `values()` directly — the zero-copy mode the latency benchmark uses.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/enactor.hpp"
#include "core/telemetry.hpp"
#include "engine/registry.hpp"
#include "engine/stats.hpp"
#include "parallel/thread_pool.hpp"
#include "residual/algebras.hpp"
#include "residual/state.hpp"

namespace essentials::residual {

struct standing_options {
  residual_options residual;  ///< ε, bucket count, inline-wave threshold
  /// Per-update re-convergence deadline (0 == unbounded).  An expired
  /// update leaves staged residuals behind; the next update resumes them.
  std::chrono::milliseconds reconverge_deadline{0};
  /// Dedicated runner thread (asynchronous absorb + snapshot publish).
  /// Off: `on_publish` applies inline on the publisher thread.
  bool service_thread = true;
  /// Record a schema-v6 standing trace per absorbed update (last_trace()).
  bool record_trace = false;
  /// Worker pool for large waves; null == parallel::default_pool().
  parallel::thread_pool* pool = nullptr;
};

/// What one absorbed epoch cost (exposed via last_update()).
struct standing_update_stats {
  std::uint64_t epoch = 0;           ///< registry epoch absorbed
  std::size_t injections = 0;        ///< residual shares injected
  bool fallback = false;             ///< full re-init (no incremental path)
  reconverge_stats reconverge;       ///< the wave loop's work counters
};

/// Type-erased face the engine holds (fan-out + shutdown), so
/// `analytics_engine` needs no knowledge of algebras.
template <typename GraphT>
class standing_query_base {
 public:
  using delta_type = typename engine::graph_registry<GraphT>::delta_type;

  virtual ~standing_query_base() = default;
  virtual std::string const& graph_name() const = 0;
  /// The registry epoch the values currently reflect (the fan-out asks
  /// the registry for the delta from here to the fresh pin).
  virtual std::uint64_t base_epoch() const = 0;
  virtual void on_publish(engine::pinned_graph<GraphT> pin,
                          delta_type delta) = 0;
  /// Cooperative stop of any in-flight re-convergence.
  virtual void cancel() = 0;
  /// Terminal: cancel, join the runner, detach engine pointers.  Idempotent;
  /// called by ~analytics_engine and by the query's own destructor.
  virtual void shutdown() = 0;
};

template <typename GraphT, typename A>
class standing_query final : public standing_query_base<GraphT> {
 public:
  using vertex_type = typename GraphT::vertex_type;
  using value_type = typename A::value_type;
  using state_type = residual_state<A, vertex_type>;
  using delta_type = typename standing_query_base<GraphT>::delta_type;
  /// Seeds (and re-seeds after a fallback reset) the state for a snapshot.
  using seed_fn = std::function<void(state_type&, GraphT const&)>;
  /// Sum algebras only: the base vector b of the fixed point x = b + D'x,
  /// enabling the exact one-edge-pass epoch rebase (residual/algebras.hpp).
  using base_fn = std::function<value_type(vertex_type)>;

  standing_query(std::string name, engine::pinned_graph<GraphT> pin,
                 A algebra, seed_fn seed, standing_options opt = {},
                 base_fn base = {}, engine::engine_stats* stats = nullptr)
      : name_(std::move(name)),
        opt_(opt),
        pool_(opt.pool ? opt.pool : &parallel::default_pool()),
        seed_(std::move(seed)),
        base_(std::move(base)),
        stats_(stats),
        pin_(std::move(pin)),
        state_(std::make_unique<state_type>(
            static_cast<std::size_t>(pin_.graph->get_num_vertices()), algebra,
            opt.residual, *pool_)) {
    expects(pin_.graph != nullptr,
            "standing_query: registration requires a pinned snapshot");
    seed_(*state_, *pin_.graph);
    // The one cold convergence this query ever pays.  Not counted as a
    // residual reconverge — the stats ratio compares *epoch absorption*
    // against cold reruns.
    state_->reconverge(*pin_.graph, stop_condition());
    processed_epoch_.store(pin_.epoch, std::memory_order_release);
    publish_snapshot();
    if (opt_.service_thread)
      runner_ = std::thread([this] { run(); });
  }

  ~standing_query() override { shutdown(); }

  std::string const& graph_name() const override { return name_; }

  std::uint64_t base_epoch() const override {
    return processed_epoch_.load(std::memory_order_acquire);
  }

  /// Engine fan-out entry.  Runner mode: enqueue and return (publishers
  /// never re-converge).  Inline mode: absorb on the calling thread.
  void on_publish(engine::pinned_graph<GraphT> pin,
                  delta_type delta) override {
    if (opt_.service_thread) {
      {
        std::lock_guard<std::mutex> guard(mutex_);
        if (stopping_)
          return;
        pending_.push_back({std::move(pin), std::move(delta)});
      }
      cv_.notify_all();
    } else {
      apply_update(std::move(pin), std::move(delta));
    }
  }

  void cancel() override { cancel_.request_cancel(); }

  void shutdown() override {
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (stopping_)
        return;
      stopping_ = true;
    }
    cancel_.request_cancel();
    cv_.notify_all();
    if (runner_.joinable())
      runner_.join();
    std::lock_guard<std::mutex> guard(mutex_);
    stats_ = nullptr;  // the engine may die before a user-held query
  }

  // --- read side -----------------------------------------------------------

  /// Inline mode: the converged values, zero-copy.  Runner mode: only safe
  /// between your own wait_processed() and the next publish — prefer
  /// snapshot().
  std::vector<value_type> const& values() const { return state_->values(); }

  /// Immutable values snapshot from the last processed epoch (runner mode's
  /// read path: grab the shared_ptr, read without locks forever).
  std::shared_ptr<std::vector<value_type> const> snapshot() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return snapshot_;
  }

  std::uint64_t processed_epoch() const { return base_epoch(); }

  /// Block until every publish up to `epoch` has been absorbed (or the
  /// query is shutting down).  Returns the epoch actually reached.
  std::uint64_t wait_processed(std::uint64_t epoch) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] {
      return stopping_ ||
             processed_epoch_.load(std::memory_order_acquire) >= epoch;
    });
    return processed_epoch_.load(std::memory_order_acquire);
  }

  /// Cost of the most recently absorbed epoch.
  standing_update_stats last_update() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return last_update_;
  }

  /// Schema-v6 trace of the most recent absorb (record_trace only).
  telemetry::trace last_trace() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return last_trace_;
  }

 private:
  struct update_t {
    engine::pinned_graph<GraphT> pin;
    delta_type delta;
  };

  enactor::cancelled_or_deadline stop_condition() const {
    enactor::cancelled_or_deadline stop;
    stop.token = cancel_;
    if (opt_.reconverge_deadline.count() > 0)
      stop.budget = enactor::time_budget(opt_.reconverge_deadline);
    return stop;
  }

  void run() {
    pool_->register_external_lane();
    for (;;) {
      update_t next;
      {
        std::unique_lock<std::mutex> lock(mutex_);
        cv_.wait(lock, [&] { return stopping_ || !pending_.empty(); });
        if (pending_.empty())
          return;  // stopping and drained
        // Coalesce a burst of publishes into one absorb: chain the deltas
        // (complete only if every link is) and keep the newest pin.
        next = std::move(pending_.front());
        pending_.pop_front();
        while (!pending_.empty()) {
          auto& chained = pending_.front();
          next.delta.records.insert(next.delta.records.end(),
                                    chained.delta.records.begin(),
                                    chained.delta.records.end());
          next.delta.complete =
              next.delta.complete && chained.delta.complete &&
              chained.delta.from_epoch == next.delta.to_epoch;
          next.delta.to_epoch = chained.delta.to_epoch;
          next.pin = std::move(chained.pin);
          pending_.pop_front();
        }
        if (stopping_ && cancel_.cancelled()) {
          // Shutdown raced a queued update: drop it rather than starting a
          // re-convergence we would immediately cancel.
          return;
        }
      }
      apply_update(std::move(next.pin), std::move(next.delta));
    }
  }

  /// Absorb one (possibly coalesced) epoch transition.
  void apply_update(engine::pinned_graph<GraphT> pin, delta_type delta) {
    if (pin.epoch <= base_epoch())
      return;  // duplicate fan-out (a newer absorb already covered it)
    GraphT const& g = *pin.graph;
    std::size_t const n = static_cast<std::size_t>(g.get_num_vertices());
    bool const resized = n != state_->size();

    standing_update_stats up;
    up.epoch = pin.epoch;

    telemetry::trace trace;
    std::optional<telemetry::scoped_recording> recording;
    if (opt_.record_trace)
      recording.emplace(trace, "standing." + name_);

    bool injected = false;
    if (!resized) {
      if constexpr (A::monotone) {
        // Insert-only fast path: residuals at changed endpoints alone.
        if (inject_monotone_delta(*state_, g, delta)) {
          injected = true;
          up.injections = delta.records.size();
        }
      } else {
        // Sum algebras: the exact rebase absorbs *arbitrary* deltas
        // (removals included) in one edge pass — no delta log needed, so
        // even a broken chain stays incremental.
        if (base_) {
          rebase_sum(*state_, g, base_);
          injected = true;
          up.injections = n + static_cast<std::size_t>(g.get_num_edges());
        }
      }
    }
    if (!injected) {
      // Fallback: removals/chain break for a min-lattice, a resize, or a
      // sum algebra without a base vector — full re-init, still in place.
      up.fallback = true;
      if (resized)
        state_ = std::make_unique<state_type>(n, state_->algebra(),
                                              opt_.residual, *pool_);
      else
        state_->reset();
      seed_(*state_, g);
    }

    up.reconverge = state_->reconverge(g, stop_condition());
    pin_ = std::move(pin);

    if (opt_.record_trace) {
      recording.reset();
      trace.standing = true;
      trace.graph_epoch = up.epoch;
      trace.residual_injections = up.injections;
      trace.residual_waves = up.reconverge.waves;
      trace.residual_final = state_->residual_mass();
    }

    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (stats_) {
        stats_->on_residual_injection(up.injections);
        if (up.fallback)
          stats_->on_residual_fallback();
        // Cold estimate: a rerun traverses at least one full edge pass of
        // the new snapshot — a deliberately conservative floor (cold BSP
        // enactments take several).
        stats_->on_residual_reconverge(
            up.reconverge.edges,
            static_cast<std::uint64_t>(g.get_num_edges()));
      }
      last_update_ = up;
      if (opt_.record_trace)
        last_trace_ = std::move(trace);
    }
    processed_epoch_.store(up.epoch, std::memory_order_release);
    publish_snapshot();
    cv_.notify_all();
  }

  void publish_snapshot() {
    if (!opt_.service_thread)
      return;  // inline mode reads values() directly — keep tiny deltas O(Δ)
    auto snap = std::make_shared<std::vector<value_type> const>(
        state_->values());
    std::lock_guard<std::mutex> guard(mutex_);
    snapshot_ = std::move(snap);
  }

  std::string name_;
  standing_options opt_;
  parallel::thread_pool* pool_;
  seed_fn seed_;
  base_fn base_;
  engine::engine_stats* stats_;
  engine::pinned_graph<GraphT> pin_;
  std::unique_ptr<state_type> state_;
  enactor::cancel_token cancel_;
  std::atomic<std::uint64_t> processed_epoch_{0};

  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<update_t> pending_;
  bool stopping_ = false;
  std::shared_ptr<std::vector<value_type> const> snapshot_;
  standing_update_stats last_update_;
  telemetry::trace last_trace_;
  std::thread runner_;
};

}  // namespace essentials::residual
