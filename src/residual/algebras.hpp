#pragma once

/// \file residual/algebras.hpp
/// \brief The shipped accumulator algebras: min-plus SSSP, BFS
/// reachability, PageRank, personalized PageRank, and adsorption-style
/// label spread — plus the seeding/rebase helpers that tie each one to the
/// rest of the framework.
///
/// Correctness anchors (the differential tests in tests/test_residual.cpp
/// hold the engine to these):
///  - **min-plus / reachability**: the fixed point is the unique bottom of
///    the min-lattice, so residual results are *bit-identical* to
///    `dijkstra`/`sssp`/`bfs` — distances are the same float sums along
///    the same shortest paths (the PR 4 incremental argument).
///  - **pagerank**: the residual fixed point solves
///    x_v = (1-d)/n + d·Σ_in x_u/deg_u, which is `pagerank()`'s fixed
///    point *when the graph has no dangling vertices* (the residual model
///    propagates along real edges only, so dangling redistribution has no
///    push form).  Differential tests use graphs with a ring guaranteeing
///    out-degree >= 1; standing queries over graphs with dangling vertices
///    get a well-defined (sub-stochastic) fixed point, documented, not
///    silently wrong.
///  - **ppr**: forward push (Andersen et al.) *is* the residual engine for
///    the (α, (1-α)/deg) sum algebra — `personalized_pagerank` is its
///    serial special case, with a global ε instead of per-degree ones.

#include <cmath>
#include <cstddef>

#include <cstdint>

#include "algorithms/relax.hpp"
#include "core/types.hpp"
#include "graph/delta.hpp"
#include "residual/algebra.hpp"
#include "residual/state.hpp"

namespace essentials::residual {

// ---------------------------------------------------------------------------
// Min-lattices
// ---------------------------------------------------------------------------

/// Min-plus (tropical) algebra: SSSP.  Claimed deltas are candidate
/// distances; combine keeps the smaller, shares are `new_value + weight` —
/// the same relaxation contract as algorithms/relax.hpp, expressed as an
/// accumulator.
template <typename W = weight_t>
struct min_plus_algebra {
  using value_type = W;
  static constexpr bool monotone = true;
  static constexpr bool exact_mass = false;

  value_type identity() const { return infinity_v<W>; }
  value_type combine(value_type value, value_type delta) const {
    return delta < value ? delta : value;
  }
  value_type accumulate(value_type* slot, value_type share) const {
    return detail::fetch_min_seq(slot, share);
  }
  value_type propagate(value_type /*claimed*/, value_type new_value, W weight,
                       std::size_t /*out_degree*/) const {
    return new_value + weight;
  }
  /// Priority = how much the pending candidate improves the value; an
  /// unreached vertex with any finite candidate is maximally urgent.
  double magnitude(value_type value, value_type pending) const {
    if (!(pending < value))
      return 0.0;
    if (value == infinity_v<W>)
      return 1e18;
    return static_cast<double>(value) - static_cast<double>(pending);
  }
  /// Every improvement must apply or the fixed point is not reached.
  double schedule_floor(std::size_t /*n*/, double /*eps*/) const {
    return 0.0;
  }
  double mass(value_type /*delta*/) const { return 0.0; }
};

/// BFS reachability as hop counts: min-plus over unit weights.  Depths are
/// int32, identical to `bfs().depths` modulo the unreached encoding
/// (identity here, -1 there — the tests translate).
struct reachability_algebra {
  using value_type = std::int32_t;
  static constexpr bool monotone = true;
  static constexpr bool exact_mass = false;

  value_type identity() const { return infinity_v<value_type>; }
  value_type combine(value_type value, value_type delta) const {
    return delta < value ? delta : value;
  }
  value_type accumulate(value_type* slot, value_type share) const {
    return detail::fetch_min_seq(slot, share);
  }
  template <typename W>
  value_type propagate(value_type /*claimed*/, value_type new_value,
                       W /*weight*/, std::size_t /*out_degree*/) const {
    return new_value + 1;
  }
  double magnitude(value_type value, value_type pending) const {
    if (!(pending < value))
      return 0.0;
    if (value == infinity_v<value_type>)
      return 1e18;
    return static_cast<double>(value) - static_cast<double>(pending);
  }
  double schedule_floor(std::size_t /*n*/, double /*eps*/) const {
    return 0.0;
  }
  double mass(value_type /*delta*/) const { return 0.0; }
};

// ---------------------------------------------------------------------------
// Weighted sums
// ---------------------------------------------------------------------------

/// PageRank: value += Δ, share = damping·Δ/deg.  Seed with
/// (1-damping)/n everywhere; the fixed point is the no-dangling PageRank
/// vector (see file comment).
struct pagerank_algebra {
  using value_type = double;
  static constexpr bool monotone = false;
  static constexpr bool exact_mass = true;

  double damping = 0.85;

  value_type identity() const { return 0.0; }
  value_type combine(value_type value, value_type delta) const {
    return value + delta;
  }
  value_type accumulate(value_type* slot, value_type share) const {
    return detail::fetch_add_seq(slot, share);
  }
  template <typename W>
  value_type propagate(value_type claimed, value_type /*new_value*/,
                       W /*weight*/, std::size_t out_degree) const {
    return out_degree == 0
               ? 0.0
               : damping * claimed / static_cast<double>(out_degree);
  }
  double magnitude(value_type /*value*/, value_type pending) const {
    return std::fabs(pending);
  }
  /// ε/(2n): a drained scheduler leaves < ε/2 unscheduled in total, and
  /// the mass counter certifies the staged remainder.
  double schedule_floor(std::size_t n, double eps) const {
    return eps / (2.0 * static_cast<double>(n ? n : 1));
  }
  double mass(value_type delta) const { return std::fabs(delta); }
  /// Epoch rebase (see `rebase_sum`): combine applies Δ with coefficient
  /// 1, so the claim equivalent of a converged value is the value itself.
  value_type rebase_claim(value_type value) const { return value; }
};

/// Personalized PageRank as forward push: value (the estimate) gains
/// α·Δ, neighbours share (1-α)·Δ/deg.  Seed with 1.0 at the source.
struct ppr_algebra {
  using value_type = double;
  static constexpr bool monotone = false;
  static constexpr bool exact_mass = true;

  double alpha = 0.15;  ///< teleport probability

  value_type identity() const { return 0.0; }
  value_type combine(value_type value, value_type delta) const {
    return value + alpha * delta;
  }
  value_type accumulate(value_type* slot, value_type share) const {
    return detail::fetch_add_seq(slot, share);
  }
  template <typename W>
  value_type propagate(value_type claimed, value_type /*new_value*/,
                       W /*weight*/, std::size_t out_degree) const {
    return out_degree == 0
               ? 0.0
               : (1.0 - alpha) * claimed / static_cast<double>(out_degree);
  }
  double magnitude(value_type /*value*/, value_type pending) const {
    return std::fabs(pending);
  }
  double schedule_floor(std::size_t n, double eps) const {
    return eps / (2.0 * static_cast<double>(n ? n : 1));
  }
  double mass(value_type delta) const { return std::fabs(delta); }
  /// combine's coefficient is α, so a converged value v corresponds to
  /// accumulated claims of v/α (used by the epoch rebase).
  value_type rebase_claim(value_type value) const { return value / alpha; }
};

/// Adsorption-style label spread: a vertex retains `retain` of each
/// incoming mass unit and spreads the rest along out-edges proportionally
/// to edge weight, deg-normalized — the weighted cousin of PPR used for
/// label propagation over affinity graphs.  One instance per label;
/// multi-label spread runs one standing query per label column.
struct spread_algebra {
  using value_type = double;
  static constexpr bool monotone = false;
  static constexpr bool exact_mass = true;

  double retain = 0.25;  ///< kept fraction per visit (adsorption's alpha)

  value_type identity() const { return 0.0; }
  value_type combine(value_type value, value_type delta) const {
    return value + retain * delta;
  }
  value_type accumulate(value_type* slot, value_type share) const {
    return detail::fetch_add_seq(slot, share);
  }
  template <typename W>
  value_type propagate(value_type claimed, value_type /*new_value*/, W weight,
                       std::size_t out_degree) const {
    return out_degree == 0 ? 0.0
                           : (1.0 - retain) * claimed *
                                 static_cast<double>(weight) /
                                 static_cast<double>(out_degree);
  }
  double magnitude(value_type /*value*/, value_type pending) const {
    return std::fabs(pending);
  }
  double schedule_floor(std::size_t n, double eps) const {
    return eps / (2.0 * static_cast<double>(n ? n : 1));
  }
  double mass(value_type delta) const { return std::fabs(delta); }
  value_type rebase_claim(value_type value) const { return value / retain; }
};

static_assert(residual_algebra<min_plus_algebra<float>>);
static_assert(residual_algebra<reachability_algebra>);
static_assert(residual_algebra<pagerank_algebra>);
static_assert(residual_algebra<ppr_algebra>);
static_assert(residual_algebra<spread_algebra>);

// ---------------------------------------------------------------------------
// Seeding and epoch-rebase helpers
// ---------------------------------------------------------------------------

/// Seed SSSP/reachability: the source's distance candidate is 0.
template <typename A, typename V>
  requires(A::monotone)
void seed_source(residual_state<A, V>& st, V source) {
  st.inject(source, typename A::value_type{0});
}

/// Seed PageRank: inject the teleport base (1-d)/n at every vertex.
template <typename V>
void seed_pagerank(residual_state<pagerank_algebra, V>& st) {
  double const base =
      (1.0 - st.algebra().damping) / static_cast<double>(st.size() ? st.size() : 1);
  for (std::size_t v = 0; v < st.size(); ++v)
    st.inject(static_cast<V>(v), base);
}

/// Seed PPR/spread: one unit of mass at the source.
template <typename A, typename V>
  requires(!A::monotone)
void seed_source_mass(residual_state<A, V>& st, V source) {
  st.inject(source, 1.0);
}

/// Exact one-edge-pass rebase of a *sum* algebra onto a new snapshot.
///
/// Given converged values x for the old graph, the residual of the new
/// linear system at x is r = b + D'·(x/c) - x/c, where D' is the new
/// propagation operator and c the combine coefficient (`rebase_claim`
/// inverts it).  In push form: inject `base(v) - x_v/c` at every vertex,
/// then push `propagate(x_u/c, ...)` along every edge of the *new*
/// snapshot.  Re-converging from there yields the new fixed point exactly
/// — arbitrary deltas (removals, weight changes) included, no delta log
/// consulted.  Cost: one edge pass, the same as a single power-iteration
/// sweep, vs the warm path's full iteration count.
template <typename G, typename A, typename V, typename Base>
  requires(!A::monotone)
void rebase_sum(residual_state<A, V>& st, G const& g, Base&& base) {
  using value_type = typename A::value_type;
  A const& a = st.algebra();
  for (std::size_t v = 0; v < st.size(); ++v) {
    value_type const claim = a.rebase_claim(st.value_at(v));
    st.inject(static_cast<V>(v), base(static_cast<V>(v)) - claim);
    if (claim == value_type{0})
      continue;
    V const u = static_cast<V>(v);
    std::size_t const deg = static_cast<std::size_t>(g.get_out_degree(u));
    for (auto const e : g.get_edges(u))
      st.inject(g.get_dest_vertex(e),
                a.propagate(claim, value_type{0}, g.get_edge_weight(e), deg));
  }
}

/// Monotone fast-path injection for an insert-only edge delta: each
/// inserted (or weight-decreased) edge can only improve its destination,
/// so injecting `propagate(..)` at the destinations of changed edges
/// re-reaches the fixed point (the PR 4 incremental argument).  Returns
/// false — caller must fall back to reset + reseed + full reconverge —
/// when the delta is incomplete or contains removals.
template <typename G, typename A, typename V, typename W>
  requires(A::monotone)
bool inject_monotone_delta(residual_state<A, V>& st, G const& g,
                           graph::edge_delta_t<V, W> const& delta) {
  if (!delta.complete || !delta.insert_only())
    return false;
  A const& a = st.algebra();
  for (auto const& r : delta.records) {
    auto const d_src = st.value_at(static_cast<std::size_t>(r.src));
    if (d_src == a.identity())
      continue;  // source unreached: the new edge changes nothing yet
    std::size_t const deg =
        static_cast<std::size_t>(g.get_out_degree(r.src));
    auto const candidate = a.propagate(d_src, d_src, r.weight, deg);
    // Test-before-RMW (the classic relaxation prune): a candidate that
    // cannot improve the converged value contributes nothing to the fixed
    // point, so skip the seq_cst accumulate and the staging probe.  This
    // keeps the absorb cost of a no-op republish at two plain loads per
    // record — the standing query's common case.
    if (!(a.magnitude(st.value_at(static_cast<std::size_t>(r.dst)),
                      candidate) > 0.0))
      continue;
    st.inject(r.dst, candidate);
  }
  return true;
}

}  // namespace essentials::residual
