#pragma once

/// \file residual/state.hpp
/// \brief Per-vertex (value, delta) accumulator state and the wave-based
/// re-convergence loop — the residual engine's core.
///
/// Execution model (Maiter's delta-accumulative processing on top of the
/// bucketed SLF/LLL scheduler of residual/buckets.hpp):
///
///   inject residuals  ──►  [buckets by magnitude]  ──►  wave = drain top
///                                  ▲                         bucket
///                                  │                           │
///                                  └── propagate shares ◄── process wave
///                                                        (claim Δ, combine,
///                                                         relax out-edges)
///
/// Waves repeat until every bucket drains (min-lattices) or the striped
/// residual counter certifies total mass < ε (sum algebras) — convergence
/// in time proportional to the injected change, not the graph.
///
/// **The scheduling handshake** (why nothing is ever lost): each vertex
/// has a `queued` flag meaning "a staged copy of v exists in some bucket".
/// Producers *accumulate into delta, then try to claim the flag*;
/// consumers *clear the flag, then drain the delta*.  All four operations
/// are seq_cst RMWs (residual/algebra.hpp::detail), so they have a single
/// total order — and in every interleaving where a producer's share lands
/// after the consumer's drain, the consumer's earlier flag-clear makes the
/// producer's claim succeed, so the share gets a fresh staging.  A share
/// can at worst be processed *earlier* than its staging (absorbed by a
/// racing wave), never left behind.
///
/// Waves run through `thread_pool::run_blocked`, so the PR 6/PR 7
/// substrate choices — work-stealing vs central, tiered NUMA steal order,
/// lane-stable scratch — carry over unchanged; small waves (the standing-
/// query steady state) are processed inline on the caller to keep
/// re-convergence latency in microseconds.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <vector>

#include "core/enactor.hpp"
#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "parallel/atomics.hpp"
#include "parallel/thread_pool.hpp"
#include "residual/algebra.hpp"
#include "residual/buckets.hpp"
#include "residual/striped_counter.hpp"

namespace essentials::residual {

struct residual_options {
  double epsilon = 1e-9;        ///< convergence: total residual mass < ε
  std::size_t num_buckets = 64; ///< factor-of-two magnitude bands
  std::size_t seq_threshold = 512;  ///< waves below this run inline (no pool)
  /// Waves smaller than this absorb every remaining bucket instead of just
  /// the top one: priority ordering cannot pay for its per-wave overhead
  /// on a handful of vertices (the standing-query steady state).
  std::size_t merge_threshold = 64;
};

/// Outcome of one `reconverge` call.
struct reconverge_stats {
  std::size_t waves = 0;       ///< priority waves executed
  std::size_t processed = 0;   ///< vertex claims (incl. stale/demoted)
  std::size_t edges = 0;       ///< out-edges relaxed (the work metric)
  bool converged = false;      ///< false only when cancelled/deadlined
  enactor::cancelled_or_deadline::reason stop_reason =
      enactor::cancelled_or_deadline::reason::none;
};

/// The residual engine for one algebra over one vertex universe.  `A` must
/// satisfy `residual_algebra`; `V` is the graph's vertex id type.
template <typename A, typename V = vertex_t>
class residual_state {
 public:
  using value_type = typename A::value_type;
  using algebra_type = A;

  residual_state(std::size_t n, A algebra, residual_options opt,
                 parallel::thread_pool& pool)
      : algebra_(algebra),
        opt_(opt),
        pool_(&pool),
        values_(n, algebra.identity()),
        deltas_(n, algebra.identity()),
        queued_(n, 0),
        buckets_(opt.num_buckets ? opt.num_buckets : 1,
                 std::max<std::size_t>(pool.max_lanes(), 1)),
        floor_(algebra.schedule_floor(n, opt.epsilon)) {}

  std::size_t size() const noexcept { return values_.size(); }
  A const& algebra() const noexcept { return algebra_; }
  residual_options const& options() const noexcept { return opt_; }
  parallel::thread_pool& pool() const noexcept { return *pool_; }

  /// Converged values.  Stable between reconverge calls; concurrent
  /// readers during a reconverge must go through value_at().
  std::vector<value_type> const& values() const noexcept { return values_; }

  /// Torn-read-safe single-value probe (atomic load).
  value_type value_at(std::size_t v) const {
    return atomic::load(&values_[v]);
  }

  /// Outstanding residual mass (exact for sum algebras between waves).
  double residual_mass() const noexcept { return counter_.total(); }

  /// Merge `share` into v's pending delta and stage v if its priority
  /// clears the floor.  Callable from any thread, including mid-wave
  /// workers — this is also the propagate path.
  void inject(V v, value_type share) {
    std::size_t const lane = pool_->lane_id();
    accumulate_and_stage(static_cast<std::size_t>(v), share, lane);
  }

  /// Re-initialize every vertex to (identity, identity) keeping capacity —
  /// the full-recompute fallback (non-monotone epoch rebase, deletion
  /// chains).  Caller must be quiescent (no wave in flight).
  void reset() {
    std::vector<V> drained;
    while (buckets_.take_wave(drained) != residual_buckets<V>::npos) {
    }
    std::fill(values_.begin(), values_.end(), algebra_.identity());
    std::fill(deltas_.begin(), deltas_.end(), algebra_.identity());
    std::fill(queued_.begin(), queued_.end(), static_cast<unsigned char>(0));
    counter_.reset();
  }

  /// Run priority waves until convergence, cancellation, or deadline.
  /// Returns the work actually done; `converged == false` means staged
  /// residuals remain and a later call resumes exactly where this stopped.
  template <typename G>
  reconverge_stats reconverge(
      G const& g, enactor::cancelled_or_deadline stop = {}) {
    reconverge_stats st;
    // Member scratch: reconverge is coordinator-only, and a steady-state
    // absorb should not pay a fresh allocation per call.
    std::vector<V>& wave = wave_scratch_;
    for (;;) {
      if (stop.budget.expired() || stop.token.cancelled()) {
        st.stop_reason = stop.why();
        return st;
      }
      if constexpr (A::exact_mass) {
        // Early convergence by mass: anything still staged is below the
        // certified total, and stays staged for the next call — flags and
        // buckets remain consistent because we stop *before* draining.
        if (counter_.total() < opt_.epsilon) {
          st.converged = true;
          return st;
        }
      }
      std::size_t b = buckets_.take_wave(wave);
      if (b == residual_buckets<V>::npos) {
        st.converged = true;
        return st;
      }
      if (wave.size() < opt_.merge_threshold) {
        // Tiny wave: fold in everything else that is staged and run it as
        // the lowest band, so LLL demotion can't bounce items between
        // micro-waves.  Ordering is a heuristic — correctness only needs
        // every staged vertex processed.
        while (buckets_.take_wave(merge_scratch_) !=
               residual_buckets<V>::npos)
          wave.insert(wave.end(), merge_scratch_.begin(),
                      merge_scratch_.end());
        b = buckets_.num_buckets() - 1;
      }
      ++st.waves;
      st.processed += wave.size();
      // One priority wave == one telemetry superstep (schema v6 standing
      // traces): frontier_in is the wave size, the metric is the residual
      // mass still outstanding when the wave retires.
      auto* const rec = telemetry::current();
      if (rec)
        rec->begin_superstep(wave.size(), direction_t::push);
      if (wave.size() < opt_.seq_threshold) {
        // Tiny wave — the standing-query steady state.  Inline on the
        // caller: a run_blocked round trip would dominate the microsecond
        // re-convergence budget.
        std::size_t const lane = pool_->lane_id();
        for (V const v : wave)
          st.edges += process_one(g, v, lane, b);
      } else {
        std::atomic<std::size_t> edges{0};
        pool_->run_blocked(
            wave.size(),
            [&](std::size_t lo, std::size_t hi) {
              std::size_t const lane = pool_->lane_id();
              std::size_t local = 0;
              for (std::size_t i = lo; i < hi; ++i)
                local += process_one(g, wave[i], lane, b);
              edges.fetch_add(local, std::memory_order_relaxed);
            },
            /*grain=*/64);
        st.edges += edges.load(std::memory_order_relaxed);
      }
      if (rec) {
        rec->set_metric(counter_.total());
        rec->end_superstep(0);
      }
    }
  }

 private:
  /// Producer protocol: accumulate (seq_cst RMW), then claim the queued
  /// flag.  Magnitude below the schedule floor skips staging — for sum
  /// algebras the floor is ε/(2n), bounding all unscheduled mass by ε/2.
  void accumulate_and_stage(std::size_t v, value_type share,
                            std::size_t lane) {
    if constexpr (A::monotone) {
      // Test-before-RMW (the classic relaxation prune): on a min-lattice a
      // share that cannot improve the current value can never improve the
      // fixed point (values only tighten), so skip the seq_cst accumulate
      // and the staging probe.  Most shares pushed into a settled region
      // die here for the price of one plain load.
      if (!(algebra_.magnitude(atomic::load(&values_[v]), share) > 0.0))
        return;
    }
    algebra_.accumulate(&deltas_[v], share);
    if constexpr (A::exact_mass)
      counter_.add(algebra_.mass(share), lane);
    maybe_stage(v, lane);
  }

  void maybe_stage(std::size_t v, std::size_t lane) {
    double const mag = algebra_.magnitude(
        atomic::load(&values_[v]), atomic::load(&deltas_[v]));
    if (!(mag > floor_))
      return;
    if (detail::try_claim(&queued_[v]))
      buckets_.stage(bucket_of(mag, buckets_.num_buckets()), lane,
                     static_cast<V>(v));
  }

  /// Consumer protocol: LLL demotion check, then clear-flag → drain-delta
  /// → combine → propagate shares into out-neighbours.  Returns edges
  /// relaxed.
  template <typename G>
  std::size_t process_one(G const& g, V v, std::size_t lane,
                          std::size_t wave_bucket) {
    std::size_t const idx = static_cast<std::size_t>(v);
    double const mag = algebra_.magnitude(atomic::load(&values_[idx]),
                                          atomic::load(&deltas_[idx]));
    if (!(mag > floor_)) {
      // Fell below the floor (absorbed/cancelled since staging): unstage.
      // The post-clear re-check closes the race with a producer whose
      // accumulate landed between our magnitude read and the clear.
      detail::clear_claim(&queued_[idx]);
      maybe_stage(idx, lane);
      return 0;
    }
    if (std::size_t const now = bucket_of(mag, buckets_.num_buckets());
        now > wave_bucket) {
      // LLL: priority dropped out of this wave's band — demote unprocessed.
      // We still hold the flag, so the restaged copy stays the only one.
      buckets_.stage(now, lane, v);
      return 0;
    }
    detail::clear_claim(&queued_[idx]);
    value_type const d =
        detail::exchange_seq(&deltas_[idx], algebra_.identity());
    if constexpr (A::exact_mass)
      counter_.add(-algebra_.mass(d), lane);
    value_type const old_v = atomic::load(&values_[idx]);
    value_type const new_v = algebra_.combine(old_v, d);
    if constexpr (A::monotone) {
      if (!(new_v < old_v))
        return 0;  // stale claim: a racing wave already absorbed it
    } else {
      if (d == algebra_.identity())
        return 0;  // drained by a racing claim
    }
    atomic::store(&values_[idx], new_v);
    std::size_t const deg = static_cast<std::size_t>(g.get_out_degree(v));
    for (auto const e : g.get_edges(v)) {
      V const n = g.get_dest_vertex(e);
      accumulate_and_stage(
          static_cast<std::size_t>(n),
          algebra_.propagate(d, new_v, g.get_edge_weight(e), deg), lane);
    }
    return deg;
  }

  A algebra_;
  residual_options opt_;
  parallel::thread_pool* pool_;
  std::vector<value_type> values_;
  std::vector<value_type> deltas_;
  std::vector<unsigned char> queued_;
  residual_buckets<V> buckets_;
  striped_counter counter_;
  double floor_;
  std::vector<V> wave_scratch_;
  std::vector<V> merge_scratch_;
};

}  // namespace essentials::residual
