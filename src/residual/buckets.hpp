#pragma once

/// \file residual/buckets.hpp
/// \brief Bucketed approximate priorities for the residual scheduler.
///
/// An exact priority queue over residual magnitudes would serialize every
/// relaxation on one heap; Maiter's SLF/LLL heuristics (SNIPPETS.md
/// Snippet 1) show approximate ordering converges just as fast.  We keep
/// both ideas, generalized from queue lengths to residual magnitudes:
///
///  - **SLF — schedule the largest first.**  Buckets are factor-of-two
///    magnitude bands (bucket index from the float exponent, larger
///    magnitude → lower index); a *wave* drains the lowest-index nonempty
///    bucket, so the biggest residuals — the ones whose application
///    retires the most downstream work — always go first.
///  - **LLL — don't process what shrank.**  At claim time the engine
///    re-reads the vertex's magnitude; if it fell below the wave's band
///    (a sum algebra's cancellation, or a bigger wave already absorbed
///    it), the vertex is demoted to its proper bucket unprocessed
///    (residual/state.hpp).
///
/// Staging is contention-free on the stealing substrate: each bucket has
/// one cache-line-padded vector per pool lane, indexed by `lane_id()`;
/// producers without a lane (central substrate, unregistered externals)
/// fall back to a spinlock-guarded overflow slot.  Wave extraction is
/// coordinator-only *between* `run_blocked` barriers, so it reads the lane
/// vectors without synchronization — the same two-phase discipline as
/// parallel/lane_buffers.hpp.

#include <atomic>
#include <bit>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "parallel/lane_buffers.hpp"  // cache_line_size
#include "parallel/spinlock.hpp"
#include "parallel/thread_pool.hpp"

namespace essentials::residual {

/// Map a positive magnitude to its bucket: factor-of-two bands anchored at
/// exponent +31 (magnitudes >= 2^31 — including min-lattice "unreached"
/// sentinels — share bucket 0; everything below the last band shares the
/// final bucket).  Monotone: larger magnitude never gets a larger index.
inline std::size_t bucket_of(double magnitude, std::size_t num_buckets) {
  if (!(magnitude > 0.0))
    return num_buckets - 1;
  int exponent = 0;
  std::frexp(magnitude, &exponent);  // magnitude = m * 2^exponent, m in [.5, 1)
  constexpr int kTopExponent = 32;   // frexp exponent of 2^31 .. 2^32)
  long const band = static_cast<long>(kTopExponent) - exponent;
  if (band < 0)
    return 0;
  if (band >= static_cast<long>(num_buckets))
    return num_buckets - 1;
  return static_cast<std::size_t>(band);
}

/// Per-priority staging area.  V is the vertex id type.
template <typename V>
class residual_buckets {
 public:
  residual_buckets(std::size_t num_buckets, std::size_t max_lanes)
      : buckets_(num_buckets), mask_((num_buckets + 63) / 64) {
    for (auto& b : buckets_)
      b.lanes.resize(max_lanes);
  }

  std::size_t num_buckets() const noexcept { return buckets_.size(); }

  /// Stage `v` into bucket `bucket`.  `lane` is the producer's pool lane
  /// (its private slot — no synchronization) or `thread_pool::no_lane`,
  /// which routes through the locked overflow slot.
  void stage(std::size_t bucket, std::size_t lane, V v) {
    auto& b = buckets_[bucket];
    std::uint64_t slot_bit;
    if (lane < b.lanes.size()) {
      b.lanes[lane].items.push_back(v);
      // Lanes 63+ share the catch-all bit with the overflow slot.
      slot_bit = std::uint64_t{1} << (lane < 63 ? lane : 63);
    } else {
      std::lock_guard<parallel::spinlock> guard(b.overflow_lock);
      b.overflow.push_back(v);
      slot_bit = std::uint64_t{1} << 63;
    }
    // Publish after the push: take_wave clears both masks before draining,
    // so a bit set by any completed stage is never lost and a stale bit
    // over an already-drained slot is merely a wasted probe.  Skip the RMW
    // when the bit is already up — mask clears only happen in take_wave,
    // which is never concurrent with producers (the two-phase discipline
    // in the file comment), so an observed set bit stays set.
    if ((b.lane_mask.load(std::memory_order_relaxed) & slot_bit) == 0)
      b.lane_mask.fetch_or(slot_bit, std::memory_order_release);
    std::uint64_t const bucket_bit = std::uint64_t{1} << (bucket & 63);
    if ((mask_[bucket >> 6].load(std::memory_order_relaxed) & bucket_bit) == 0)
      mask_[bucket >> 6].fetch_or(bucket_bit, std::memory_order_release);
  }

  /// Drain the highest-priority (lowest-index) nonempty bucket into `out`
  /// and return its index, or npos when every bucket is empty.
  /// Coordinator-only, between waves.  The nonempty bitmask makes the
  /// steady-state probe O(1) — an empty scheduler answers from one cache
  /// line instead of walking every bucket's lane slots (the fixed cost
  /// that would otherwise dominate a standing query's microsecond absorb).
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t take_wave(std::vector<V>& out) {
    out.clear();
    for (std::size_t w = 0; w < mask_.size(); ++w) {
      std::uint64_t bits = mask_[w].load(std::memory_order_acquire);
      while (bits != 0) {
        int const bit = std::countr_zero(bits);
        bits &= bits - 1;
        std::size_t const i = (w << 6) + static_cast<std::size_t>(bit);
        mask_[w].fetch_and(~(std::uint64_t{1} << bit),
                           std::memory_order_acq_rel);
        auto& b = buckets_[i];
        // Visit only the (padded, scattered) lane slots some producer
        // actually touched — a one-producer wave drains one cache line,
        // not max_lanes of them.
        std::uint64_t lm = b.lane_mask.exchange(0, std::memory_order_acq_rel);
        bool const catch_all = (lm >> 63) != 0;
        lm &= ~(std::uint64_t{1} << 63);
        while (lm != 0) {
          int const slot = std::countr_zero(lm);
          lm &= lm - 1;
          auto& lane = b.lanes[static_cast<std::size_t>(slot)];
          out.insert(out.end(), lane.items.begin(), lane.items.end());
          lane.items.clear();
        }
        if (catch_all) {
          for (std::size_t s = 63; s < b.lanes.size(); ++s) {
            out.insert(out.end(), b.lanes[s].items.begin(),
                       b.lanes[s].items.end());
            b.lanes[s].items.clear();
          }
          std::lock_guard<parallel::spinlock> guard(b.overflow_lock);
          out.insert(out.end(), b.overflow.begin(), b.overflow.end());
          b.overflow.clear();
        }
        if (!out.empty())
          return i;
      }
    }
    return npos;
  }

  /// Coordinator-only emptiness probe (between waves).
  bool empty() const {
    for (auto const& b : buckets_) {
      for (auto const& lane : b.lanes)
        if (!lane.items.empty())
          return false;
      if (!b.overflow.empty())
        return false;
    }
    return true;
  }

 private:
  struct alignas(parallel::cache_line_size) lane_slot {
    std::vector<V> items;
  };
  struct bucket_t {
    std::vector<lane_slot> lanes;
    std::vector<V> overflow;
    mutable parallel::spinlock overflow_lock;
    /// Bit s set => lane slot s (bit 63: overflow + lanes 63+) may be
    /// nonempty.  Same set-after-push / clear-before-drain protocol as the
    /// bucket-level mask.
    std::atomic<std::uint64_t> lane_mask{0};
  };
  std::vector<bucket_t> buckets_;
  /// Bit i set => bucket i may be nonempty (set-after-push by producers,
  /// cleared-before-drain by take_wave; stale set bits are benign).
  std::vector<std::atomic<std::uint64_t>> mask_;
};

}  // namespace essentials::residual
