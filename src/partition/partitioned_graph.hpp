#pragma once

/// \file partition/partitioned_graph.hpp
/// \brief A partitioned graph exposed through the *same* native-graph API —
/// the paper's §III-D vision realized: "when the top-level graph data
/// structure is queried, the APIs will need to support the use of the
/// corresponding partitioned sub-graph to return the result of a query."
///
/// Internally the edge set is split into one CSR fragment per part (a
/// fragment holds the out-edges of the vertices its part owns; column ids
/// stay global).  The top-level `get_edges`/`get_dest_vertex`/
/// `get_edge_weight` queries route to the owning fragment, with edge ids
/// living in a concatenated global space — so every operator and algorithm
/// in this library (advance, SSSP, BFS, ...) runs on a partitioned graph
/// unchanged.  Tests assert exactly that.

#include <algorithm>
#include <cstddef>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"
#include "graph/graph.hpp"
#include "partition/partition.hpp"

namespace essentials::partition {

template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class partitioned_graph_t {
 public:
  using vertex_type = V;
  using edge_type = E;
  using weight_type = W;
  static constexpr bool has_csr = true;   ///< push queries are served
  static constexpr bool has_csc = false;  ///< pull is not (transpose first)
  static constexpr bool has_coo = false;

  partitioned_graph_t() = default;

  /// Split `csr` according to `p`.
  partitioned_graph_t(graph::csr_t<V, E, W> const& csr,
                      partition_t<V> partition)
      : partition_(std::move(partition)),
        num_vertices_(csr.num_rows) {
    int const k = partition_.num_parts;
    expects(partition_.assignment.size() ==
                static_cast<std::size_t>(csr.num_rows),
            "partitioned_graph: assignment size mismatch");
    fragments_.resize(static_cast<std::size_t>(k));

    // Per-vertex location: owning fragment + local row inside it.
    local_row_.resize(static_cast<std::size_t>(csr.num_rows));
    std::vector<V> next_row(static_cast<std::size_t>(k), V{0});
    for (V v = 0; v < csr.num_rows; ++v) {
      int const part = partition_.part_of(v);
      local_row_[static_cast<std::size_t>(v)] =
          next_row[static_cast<std::size_t>(part)]++;
    }
    for (int part = 0; part < k; ++part) {
      auto& fragment = fragments_[static_cast<std::size_t>(part)];
      fragment.owned.reserve(
          static_cast<std::size_t>(next_row[static_cast<std::size_t>(part)]));
      fragment.csr.num_rows = next_row[static_cast<std::size_t>(part)];
      fragment.csr.num_cols = csr.num_cols;
      fragment.csr.row_offsets.assign(
          static_cast<std::size_t>(fragment.csr.num_rows) + 1, E{0});
    }
    for (V v = 0; v < csr.num_rows; ++v)
      fragments_[static_cast<std::size_t>(partition_.part_of(v))]
          .owned.push_back(v);

    // Fill each fragment's CSR (rows in owned order, global columns).
    for (int part = 0; part < k; ++part) {
      auto& fragment = fragments_[static_cast<std::size_t>(part)];
      for (std::size_t r = 0; r < fragment.owned.size(); ++r) {
        V const v = fragment.owned[r];
        E const deg = csr.row_offsets[static_cast<std::size_t>(v) + 1] -
                      csr.row_offsets[static_cast<std::size_t>(v)];
        fragment.csr.row_offsets[r + 1] =
            fragment.csr.row_offsets[r] + deg;
      }
      auto const m =
          static_cast<std::size_t>(fragment.csr.row_offsets.back());
      fragment.csr.column_indices.resize(m);
      fragment.csr.values.resize(m);
      for (std::size_t r = 0; r < fragment.owned.size(); ++r) {
        V const v = fragment.owned[r];
        E dst = fragment.csr.row_offsets[r];
        for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
             e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e, ++dst) {
          fragment.csr.column_indices[static_cast<std::size_t>(dst)] =
              csr.column_indices[static_cast<std::size_t>(e)];
          fragment.csr.values[static_cast<std::size_t>(dst)] =
              csr.values[static_cast<std::size_t>(e)];
        }
      }
    }

    // Global edge-id space: fragment f owns [edge_base_[f], edge_base_[f+1]).
    edge_base_.assign(static_cast<std::size_t>(k) + 1, E{0});
    for (int part = 0; part < k; ++part)
      edge_base_[static_cast<std::size_t>(part) + 1] =
          edge_base_[static_cast<std::size_t>(part)] +
          fragments_[static_cast<std::size_t>(part)].csr.num_edges();
  }

  // --- the same top-level graph API ------------------------------------------

  V get_num_vertices() const { return num_vertices_; }
  E get_num_edges() const { return edge_base_.back(); }
  int num_parts() const { return partition_.num_parts; }
  partition_t<V> const& partition() const { return partition_; }

  E get_out_degree(V v) const {
    auto const& fragment = fragment_of(v);
    std::size_t const r =
        static_cast<std::size_t>(local_row_[static_cast<std::size_t>(v)]);
    return fragment.csr.row_offsets[r + 1] - fragment.csr.row_offsets[r];
  }

  graph::id_range<E> get_edges(V v) const {
    int const part = partition_.part_of(v);
    auto const& fragment = fragments_[static_cast<std::size_t>(part)];
    std::size_t const r =
        static_cast<std::size_t>(local_row_[static_cast<std::size_t>(v)]);
    E const base = edge_base_[static_cast<std::size_t>(part)];
    return {static_cast<E>(base + fragment.csr.row_offsets[r]),
            static_cast<E>(base + fragment.csr.row_offsets[r + 1])};
  }

  V get_dest_vertex(E e) const {
    auto const [part, local] = locate(e);
    return fragments_[part].csr.column_indices[local];
  }

  W get_edge_weight(E e) const {
    auto const [part, local] = locate(e);
    return fragments_[part].csr.values[local];
  }

  graph::id_range<V> get_vertices() const { return {V{0}, num_vertices_}; }

  /// Vertices owned by one part (for per-part/rank processing loops).
  std::vector<V> const& owned_vertices(int part) const {
    return fragments_[static_cast<std::size_t>(part)].owned;
  }

 private:
  struct fragment_t {
    std::vector<V> owned;          ///< global ids, in local-row order
    graph::csr_t<V, E, W> csr;     ///< rows local, columns global
  };

  fragment_t const& fragment_of(V v) const {
    return fragments_[static_cast<std::size_t>(partition_.part_of(v))];
  }

  /// Map a global edge id to (fragment index, local edge index).
  std::pair<std::size_t, std::size_t> locate(E e) const {
    auto const it =
        std::upper_bound(edge_base_.begin(), edge_base_.end(), e);
    std::size_t const part =
        static_cast<std::size_t>(it - edge_base_.begin()) - 1;
    return {part, static_cast<std::size_t>(e - edge_base_[part])};
  }

  partition_t<V> partition_;
  V num_vertices_ = 0;
  std::vector<fragment_t> fragments_;
  std::vector<V> local_row_;  ///< local row index of each global vertex
  std::vector<E> edge_base_;  ///< prefix of fragment edge counts
};

}  // namespace essentials::partition
