#pragma once

/// \file partition/partition.hpp
/// \brief Partitioning heuristics and quality metrics — the paper's fourth
/// pillar (§III-D): "partitioned graphs could also simply be expressed as
/// another such representation."
///
/// Heuristics (Table I lists "Random partitioning, METIS"):
///  - `partition_random`  — the paper's named baseline.
///  - `partition_block`   — contiguous ranges (the locality-free strawman
///    that is nonetheless great on meshes with ordered ids).
///  - `partition_greedy_edges` — degree-balanced greedy (edge-count
///    balance, the objective vertex-cut systems care about).
///  - `partition_bfs_grow` — multilevel-flavoured region growing from k
///    seeds (our METIS substitute: optimizes edge cut like METIS's
///    coarsening/refinement does, at a fraction of the machinery; see
///    DESIGN.md §2).
///
/// Metrics: `edge_cut` (fraction of edges crossing parts) and
/// `vertex_balance`/`edge_balance` (max part size over average).

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <numeric>
#include <vector>

#include "core/types.hpp"
#include "generators/random.hpp"
#include "graph/formats.hpp"

namespace essentials::partition {

/// A k-way partition: part id per vertex.
template <typename V = vertex_t>
struct partition_t {
  int num_parts = 1;
  std::vector<int> assignment;  ///< assignment[v] in [0, num_parts)

  int part_of(V v) const { return assignment[static_cast<std::size_t>(v)]; }
};

// ---------------------------------------------------------------------------
// Heuristics
// ---------------------------------------------------------------------------

/// Uniform random assignment — the paper's baseline heuristic.
template <typename V = vertex_t>
partition_t<V> partition_random(V num_vertices, int num_parts,
                                std::uint64_t seed = 1) {
  expects(num_parts >= 1, "partition_random: num_parts < 1");
  partition_t<V> p;
  p.num_parts = num_parts;
  p.assignment.resize(static_cast<std::size_t>(num_vertices));
  generators::rng_t rng(seed);
  for (auto& a : p.assignment)
    a = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(num_parts)));
  return p;
}

/// Contiguous block ranges: part i owns [i*n/k, (i+1)*n/k).
template <typename V = vertex_t>
partition_t<V> partition_block(V num_vertices, int num_parts) {
  expects(num_parts >= 1, "partition_block: num_parts < 1");
  partition_t<V> p;
  p.num_parts = num_parts;
  p.assignment.resize(static_cast<std::size_t>(num_vertices));
  std::size_t const n = static_cast<std::size_t>(num_vertices);
  for (std::size_t v = 0; v < n; ++v)
    p.assignment[v] = static_cast<int>(
        (v * static_cast<std::size_t>(num_parts)) / std::max<std::size_t>(n, 1));
  return p;
}

/// Greedy edge-balanced: visit vertices in decreasing degree order, assign
/// each to the currently lightest part (by accumulated edge count).  Yields
/// near-perfect edge balance regardless of degree skew.
template <typename V, typename E, typename W>
partition_t<V> partition_greedy_edges(graph::csr_t<V, E, W> const& csr,
                                      int num_parts) {
  expects(num_parts >= 1, "partition_greedy_edges: num_parts < 1");
  partition_t<V> p;
  p.num_parts = num_parts;
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  p.assignment.assign(n, 0);

  std::vector<V> order(n);
  std::iota(order.begin(), order.end(), V{0});
  std::stable_sort(order.begin(), order.end(), [&](V a, V b) {
    auto const da = csr.row_offsets[static_cast<std::size_t>(a) + 1] -
                    csr.row_offsets[static_cast<std::size_t>(a)];
    auto const db = csr.row_offsets[static_cast<std::size_t>(b) + 1] -
                    csr.row_offsets[static_cast<std::size_t>(b)];
    return da > db;
  });
  std::vector<std::size_t> load(static_cast<std::size_t>(num_parts), 0);
  for (V const v : order) {
    auto const lightest =
        std::min_element(load.begin(), load.end()) - load.begin();
    p.assignment[static_cast<std::size_t>(v)] = static_cast<int>(lightest);
    load[static_cast<std::size_t>(lightest)] += static_cast<std::size_t>(
        csr.row_offsets[static_cast<std::size_t>(v) + 1] -
        csr.row_offsets[static_cast<std::size_t>(v)]);
  }
  return p;
}

/// BFS region growing (our METIS stand-in): k seeds spread by re-seeding
/// from unassigned vertices, then grow all regions breadth-first in
/// round-robin, capping each region near n/k vertices.  Minimizes edge cut
/// on graphs with locality (meshes/roads) the way multilevel partitioners
/// do, with bounded imbalance.
template <typename V, typename E, typename W>
partition_t<V> partition_bfs_grow(graph::csr_t<V, E, W> const& csr,
                                  int num_parts, std::uint64_t seed = 1) {
  expects(num_parts >= 1, "partition_bfs_grow: num_parts < 1");
  partition_t<V> p;
  p.num_parts = num_parts;
  std::size_t const n = static_cast<std::size_t>(csr.num_rows);
  p.assignment.assign(n, -1);
  if (n == 0)
    return p;

  std::size_t const cap =
      (n + static_cast<std::size_t>(num_parts) - 1) /
      static_cast<std::size_t>(num_parts);
  std::vector<std::deque<V>> frontiers(static_cast<std::size_t>(num_parts));
  std::vector<std::size_t> size(static_cast<std::size_t>(num_parts), 0);
  generators::rng_t rng(seed);

  // Seed each region at a random still-unassigned vertex.
  for (int part = 0; part < num_parts; ++part) {
    for (int attempt = 0; attempt < 64; ++attempt) {
      V const v = static_cast<V>(rng.next_below(n));
      if (p.assignment[static_cast<std::size_t>(v)] == -1) {
        p.assignment[static_cast<std::size_t>(v)] = part;
        frontiers[static_cast<std::size_t>(part)].push_back(v);
        ++size[static_cast<std::size_t>(part)];
        break;
      }
    }
  }

  // Round-robin breadth-first growth with a per-region cap.
  bool progress = true;
  while (progress) {
    progress = false;
    for (int part = 0; part < num_parts; ++part) {
      auto& fq = frontiers[static_cast<std::size_t>(part)];
      if (fq.empty() || size[static_cast<std::size_t>(part)] >= cap)
        continue;
      V const v = fq.front();
      fq.pop_front();
      for (E e = csr.row_offsets[static_cast<std::size_t>(v)];
           e < csr.row_offsets[static_cast<std::size_t>(v) + 1]; ++e) {
        V const nb = csr.column_indices[static_cast<std::size_t>(e)];
        if (p.assignment[static_cast<std::size_t>(nb)] != -1)
          continue;
        if (size[static_cast<std::size_t>(part)] >= cap)
          break;
        p.assignment[static_cast<std::size_t>(nb)] = part;
        fq.push_back(nb);
        ++size[static_cast<std::size_t>(part)];
      }
      progress = true;
    }
  }

  // Disconnected leftovers: assign to the lightest part.
  for (std::size_t v = 0; v < n; ++v) {
    if (p.assignment[v] != -1)
      continue;
    auto const lightest =
        std::min_element(size.begin(), size.end()) - size.begin();
    p.assignment[v] = static_cast<int>(lightest);
    ++size[static_cast<std::size_t>(lightest)];
  }
  return p;
}

// ---------------------------------------------------------------------------
// Quality metrics
// ---------------------------------------------------------------------------

/// Number of edges whose endpoints live in different parts.
template <typename V, typename E, typename W>
std::size_t edge_cut(graph::csr_t<V, E, W> const& csr,
                     partition_t<V> const& p) {
  std::size_t cut = 0;
  for (V u = 0; u < csr.num_rows; ++u)
    for (E e = csr.row_offsets[static_cast<std::size_t>(u)];
         e < csr.row_offsets[static_cast<std::size_t>(u) + 1]; ++e)
      if (p.part_of(u) !=
          p.part_of(csr.column_indices[static_cast<std::size_t>(e)]))
        ++cut;
  return cut;
}

/// Fraction of edges cut, in [0, 1].
template <typename V, typename E, typename W>
double edge_cut_fraction(graph::csr_t<V, E, W> const& csr,
                         partition_t<V> const& p) {
  auto const m = csr.column_indices.size();
  return m == 0 ? 0.0
                : static_cast<double>(edge_cut(csr, p)) /
                      static_cast<double>(m);
}

/// Max part vertex count over the perfectly balanced count (1.0 == ideal).
template <typename V>
double vertex_balance(partition_t<V> const& p) {
  if (p.assignment.empty())
    return 1.0;
  std::vector<std::size_t> count(static_cast<std::size_t>(p.num_parts), 0);
  for (int const a : p.assignment)
    ++count[static_cast<std::size_t>(a)];
  std::size_t const worst = *std::max_element(count.begin(), count.end());
  double const ideal = static_cast<double>(p.assignment.size()) /
                       static_cast<double>(p.num_parts);
  return static_cast<double>(worst) / ideal;
}

/// Max part edge count over the balanced edge count (1.0 == ideal).
template <typename V, typename E, typename W>
double edge_balance(graph::csr_t<V, E, W> const& csr,
                    partition_t<V> const& p) {
  std::vector<std::size_t> load(static_cast<std::size_t>(p.num_parts), 0);
  for (V u = 0; u < csr.num_rows; ++u)
    load[static_cast<std::size_t>(p.part_of(u))] += static_cast<std::size_t>(
        csr.row_offsets[static_cast<std::size_t>(u) + 1] -
        csr.row_offsets[static_cast<std::size_t>(u)]);
  std::size_t const worst = *std::max_element(load.begin(), load.end());
  double const ideal = static_cast<double>(csr.column_indices.size()) /
                       static_cast<double>(p.num_parts);
  return ideal == 0.0 ? 1.0 : static_cast<double>(worst) / ideal;
}

}  // namespace essentials::partition
