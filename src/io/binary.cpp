#include "io/binary.hpp"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "core/types.hpp"

namespace essentials::io {

namespace {

constexpr std::uint64_t kMagic = 0x4553534E43535231ull;  // "ESSNCSR1"
constexpr std::uint32_t kVersion = 1;

template <typename T>
void write_pod(std::ostream& out, T const& value) {
  out.write(reinterpret_cast<char const*>(&value), sizeof(T));
}

template <typename T>
void read_pod(std::istream& in, T& value) {
  in.read(reinterpret_cast<char*>(&value), sizeof(T));
  if (!in)
    throw graph_error("binary_csr: truncated input");
}

// Generic over the vector's allocator so the CSR's numa_vector fields and
// plain std::vectors both serialize through one pair of helpers.
template <typename T, typename A>
void write_vec(std::ostream& out, std::vector<T, A> const& v) {
  write_pod(out, static_cast<std::uint64_t>(v.size()));
  out.write(reinterpret_cast<char const*>(v.data()),
            static_cast<std::streamsize>(v.size() * sizeof(T)));
}

template <typename T, typename A>
void read_vec(std::istream& in, std::vector<T, A>& v) {
  std::uint64_t size = 0;
  read_pod(in, size);
  v.resize(static_cast<std::size_t>(size));
  in.read(reinterpret_cast<char*>(v.data()),
          static_cast<std::streamsize>(v.size() * sizeof(T)));
  if (!in)
    throw graph_error("binary_csr: truncated array");
}

}  // namespace

void write_binary_csr(std::ostream& out, graph::csr_t<> const& csr) {
  write_pod(out, kMagic);
  write_pod(out, kVersion);
  write_pod(out, csr.num_rows);
  write_pod(out, csr.num_cols);
  write_vec(out, csr.row_offsets);
  write_vec(out, csr.column_indices);
  write_vec(out, csr.values);
}

void write_binary_csr_file(std::string const& path, graph::csr_t<> const& csr) {
  std::ofstream out(path, std::ios::binary);
  if (!out)
    throw graph_error("binary_csr: cannot open '" + path + "' for writing");
  write_binary_csr(out, csr);
}

graph::csr_t<> read_binary_csr(std::istream& in) {
  std::uint64_t magic = 0;
  std::uint32_t version = 0;
  read_pod(in, magic);
  if (magic != kMagic)
    throw graph_error("binary_csr: bad magic (not an essentials CSR file)");
  read_pod(in, version);
  if (version != kVersion)
    throw graph_error("binary_csr: unsupported version");
  graph::csr_t<> csr;
  read_pod(in, csr.num_rows);
  read_pod(in, csr.num_cols);
  read_vec(in, csr.row_offsets);
  read_vec(in, csr.column_indices);
  read_vec(in, csr.values);
  if (csr.row_offsets.size() != static_cast<std::size_t>(csr.num_rows) + 1 ||
      csr.values.size() != csr.column_indices.size())
    throw graph_error("binary_csr: inconsistent array sizes");
  return csr;
}

graph::csr_t<> read_binary_csr_file(std::string const& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw graph_error("binary_csr: cannot open '" + path + "'");
  return read_binary_csr(in);
}

}  // namespace essentials::io
