#pragma once

/// \file io/mapped.hpp
/// \brief Out-of-core block-coded graphs: a page-aligned on-disk layout of
/// the block codec (graph/compressed.hpp) plus `mapped_graph`, an
/// mmap-backed graph that exposes the identical operator-facing API as
/// `compressed_graph`.  BFS/SSSP and the operator matrix run on a graph
/// that never fully resides in RAM: the kernel pages 4 KiB windows of
/// adjacency in on demand and evicts them under pressure.
///
/// File layout (all sections start on a 4096-byte boundary, so every
/// mmap'd section pointer is page- and word-aligned):
///
///     page 0   header: magic "ESSNBLK1", version, endianness tag,
///              element sizes, block_edges, counts, section table
///     section  row offsets     u64[num_vertices + 1]
///     section  block offsets   u64[num_blocks + 1]
///     section  adjacency       block stream (+ trailing slop bytes)
///     section  weights         W[num_edges]
///
/// The reader validates magic/version, the endianness tag (0x01020304
/// round-trips only on a same-endian host), element sizes against the
/// template parameters, and every section's bounds against the real file
/// size — a truncated or garbage file throws graph_error instead of
/// faulting (fuzzed in test_io_fuzz.cpp).
///
/// `madvise` windowing: supersteps walk adjacency front to back, so
/// `advise_sequential()` turns on kernel readahead for the whole
/// adjacency section, and `advise_window(lo, hi)` prefetches exactly the
/// block range covering a vertex interval (WILLNEED) — the
/// segment-windowed access pattern of out-of-core graph engines.
/// `advise_dontneed()` drops cold adjacency pages, which is how the
/// registry's storage tier keeps demoted epochs at near-zero resident
/// cost while still serving lookups.
///
/// NUMA interaction: pages fault in on first touch by the worker that
/// reads them (kernel default policy), so the mmap tier composes with the
/// first-touch placement discipline of parallel/first_touch.hpp without
/// extra code — the thread that owns a vertex range faults its window.

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>

#include "core/types.hpp"
#include "graph/compressed.hpp"
#include "graph/formats.hpp"

namespace essentials::io {

// ---------------------------------------------------------------------------
// On-disk format
// ---------------------------------------------------------------------------

inline constexpr std::uint64_t kMappedMagic = 0x4553534E424C4B31ull;  // "ESSNBLK1"
inline constexpr std::uint32_t kMappedVersion = 1;
inline constexpr std::uint32_t kEndianTag = 0x01020304u;
inline constexpr std::size_t kMappedPage = 4096;

/// Fixed header filling (the start of) page 0.
struct mapped_header {
  std::uint64_t magic;
  std::uint32_t version;
  std::uint32_t endian_tag;
  std::uint32_t sizeof_vertex;
  std::uint32_t sizeof_edge;
  std::uint32_t sizeof_weight;
  std::uint32_t block_edges;
  std::uint64_t num_vertices;
  std::uint64_t num_cols;
  std::uint64_t num_edges;
  std::uint64_t num_blocks;
  std::uint64_t off_rows, len_rows;        ///< u64[num_vertices + 1]
  std::uint64_t off_blocks, len_blocks;    ///< u64[num_blocks + 1]
  std::uint64_t off_adj, len_adj;          ///< block stream incl. slop
  std::uint64_t off_weights, len_weights;  ///< W[num_edges]
};
static_assert(sizeof(mapped_header) <= kMappedPage,
              "mapped_header must fit the header page");

// ---------------------------------------------------------------------------
// Platform shims (io/mapped.cpp)
// ---------------------------------------------------------------------------

namespace detail {

/// A read-only mapping of a whole file.  On non-mmap platforms this is a
/// heap buffer holding the file contents — same pointers, no paging.
struct file_mapping {
  void* addr = nullptr;
  std::size_t length = 0;
  int fd = -1;        ///< -1 when backed by the heap fallback
  bool heap = false;  ///< true when `addr` is owned heap memory
};

/// Map `path` read-only; throws graph_error on open/map failure.
file_mapping map_readonly(std::string const& path);
void unmap(file_mapping& m) noexcept;

enum class advice { normal, sequential, random, willneed, dontneed };

/// Best-effort madvise over [addr, addr+length), page-aligned internally.
/// No-op on platforms without madvise or for heap-backed mappings.
void advise(file_mapping const& m, std::size_t offset, std::size_t length,
            advice a) noexcept;

std::size_t page_size() noexcept;

/// Resident-set size of the calling process in bytes (0 if unavailable);
/// benches report it next to bytes-per-edge so footprint wins are visible.
std::size_t process_resident_bytes() noexcept;

}  // namespace detail

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

namespace detail {
/// Writes the raw section layout; declared here so the template writer
/// below stays header-only without pulling <fstream> into every TU.
void write_mapped_sections(std::string const& path, mapped_header const& h,
                           void const* rows, void const* blocks,
                           void const* adj, void const* weights);
}  // namespace detail

/// Serialize a compressed graph into the page-aligned on-disk format.
template <typename V, typename E, typename W>
void write_mapped_graph(std::string const& path,
                        graph::compressed_graph<V, E, W> const& g) {
  static_assert(sizeof(std::uint64_t) == 8);
  mapped_header h{};
  h.magic = kMappedMagic;
  h.version = kMappedVersion;
  h.endian_tag = kEndianTag;
  h.sizeof_vertex = sizeof(V);
  h.sizeof_edge = sizeof(E);
  h.sizeof_weight = sizeof(W);
  h.block_edges = static_cast<std::uint32_t>(graph::blockcodec::block_edges);
  h.num_vertices = static_cast<std::uint64_t>(g.base_num_vertices());
  h.num_cols = static_cast<std::uint64_t>(g.base_num_cols());
  h.num_edges = g.base_num_edges();
  h.num_blocks = g.num_blocks();
  std::uint64_t cursor = kMappedPage;
  auto const place = [&cursor](std::uint64_t& off, std::uint64_t& len,
                               std::uint64_t bytes) {
    off = cursor;
    len = bytes;
    cursor += (bytes + kMappedPage - 1) / kMappedPage * kMappedPage;
  };
  place(h.off_rows, h.len_rows, (h.num_vertices + 1) * sizeof(std::uint64_t));
  place(h.off_blocks, h.len_blocks,
        (h.num_blocks + 1) * sizeof(std::uint64_t));
  place(h.off_adj, h.len_adj,
        g.block_offsets_data()[h.num_blocks] + graph::blockcodec::stream_slop);
  place(h.off_weights, h.len_weights, h.num_edges * sizeof(W));
  detail::write_mapped_sections(path, h, g.row_offsets_data(),
                                g.block_offsets_data(), g.adjacency_data(),
                                g.weights_data());
}

/// Convenience: compress a plain CSR and serialize it in one step.
template <typename V, typename E, typename W>
void write_mapped_graph(std::string const& path,
                        graph::csr_t<V, E, W> const& csr) {
  write_mapped_graph(path, graph::compressed_graph<V, E, W>(csr));
}

// ---------------------------------------------------------------------------
// mapped_graph
// ---------------------------------------------------------------------------

/// Out-of-core block-coded graph: the operator-facing API of
/// `compressed_graph`, served from an mmap'd file.  Immutable, movable,
/// not copyable (the mapping is unique).
template <typename V = vertex_t, typename E = edge_t, typename W = weight_t>
class mapped_graph
    : public graph::block_graph_base<mapped_graph<V, E, W>, V, E, W> {
 public:
  mapped_graph() = default;

  /// Map `path`, validating header and section bounds.  Throws
  /// graph_error on bad magic/version/endianness/element sizes, a
  /// block_edges mismatch with this build, or any section exceeding the
  /// real file size (truncation).
  explicit mapped_graph(std::string const& path)
      : map_(detail::map_readonly(path)),
        cookie_(graph::blockcodec::next_cookie()) {
    try {
      validate();
    } catch (...) {
      detail::unmap(map_);
      throw;
    }
  }

  ~mapped_graph() { detail::unmap(map_); }

  mapped_graph(mapped_graph&& other) noexcept { *this = std::move(other); }
  mapped_graph& operator=(mapped_graph&& other) noexcept {
    if (this != &other) {
      detail::unmap(map_);
      map_ = other.map_;
      header_ = other.header_;
      cookie_ = other.cookie_;
      other.map_ = detail::file_mapping{};
      other.header_ = mapped_header{};
    }
    return *this;
  }
  mapped_graph(mapped_graph const&) = delete;
  mapped_graph& operator=(mapped_graph const&) = delete;

  // Storage access for block_graph_base.
  V base_num_vertices() const { return static_cast<V>(header_.num_vertices); }
  V base_num_cols() const { return static_cast<V>(header_.num_cols); }
  std::uint64_t base_num_edges() const { return header_.num_edges; }
  std::uint64_t const* row_offsets_data() const {
    return section<std::uint64_t>(header_.off_rows);
  }
  std::uint64_t const* block_offsets_data() const {
    return section<std::uint64_t>(header_.off_blocks);
  }
  std::uint8_t const* adjacency_data() const {
    return section<std::uint8_t>(header_.off_adj);
  }
  W const* weights_data() const { return section<W>(header_.off_weights); }
  std::uint64_t cookie() const { return cookie_; }

  // --- madvise windowing -----------------------------------------------------

  /// Kernel readahead across the whole adjacency + weight sections — the
  /// right mode for front-to-back supersteps.
  void advise_sequential() const {
    detail::advise(map_, header_.off_adj, header_.len_adj,
                   detail::advice::sequential);
    detail::advise(map_, header_.off_weights, header_.len_weights,
                   detail::advice::sequential);
  }

  /// Random access (frontier-driven traversals): disable readahead.
  void advise_random() const {
    detail::advise(map_, header_.off_adj, header_.len_adj,
                   detail::advice::random);
  }

  /// Prefetch the adjacency window covering vertices [first, last): the
  /// per-superstep segment window.
  void advise_window(V first, V last) const {
    if (first >= last || header_.num_edges == 0)
      return;
    std::uint64_t const* const row = row_offsets_data();
    std::uint64_t const* const blk = block_offsets_data();
    std::uint64_t const b_lo = row[static_cast<std::size_t>(first)] /
                               graph::blockcodec::block_edges;
    std::uint64_t const e_hi = row[static_cast<std::size_t>(last)];
    std::uint64_t const b_hi =
        (e_hi + graph::blockcodec::block_edges - 1) /
        graph::blockcodec::block_edges;
    std::uint64_t const byte_lo = blk[b_lo];
    std::uint64_t const byte_hi = blk[std::min(b_hi, header_.num_blocks)];
    detail::advise(map_, header_.off_adj + byte_lo, byte_hi - byte_lo,
                   detail::advice::willneed);
  }

  /// Drop adjacency + weight pages from the resident set (cold epoch).
  void advise_dontneed() const {
    detail::advise(map_, header_.off_adj, header_.len_adj,
                   detail::advice::dontneed);
    detail::advise(map_, header_.off_weights, header_.len_weights,
                   detail::advice::dontneed);
  }

  /// Rehydrate a plain CSR (registry promotion path).
  graph::csr_t<V, E, W> to_csr() const {
    graph::csr_t<V, E, W> csr;
    csr.num_rows = base_num_vertices();
    csr.num_cols = base_num_cols();
    csr.row_offsets.resize(static_cast<std::size_t>(header_.num_vertices) + 1);
    std::uint64_t const* const row = row_offsets_data();
    for (std::size_t i = 0; i < csr.row_offsets.size(); ++i)
      csr.row_offsets[i] = static_cast<E>(row[i]);
    csr.column_indices.resize(static_cast<std::size_t>(header_.num_edges));
    for (std::uint64_t b = 0; b < header_.num_blocks; ++b)
      this->decode_block_into(b, csr.column_indices.data() +
                                     b * graph::blockcodec::block_edges);
    W const* const w = weights_data();
    csr.values.assign(w, w + header_.num_edges);
    return csr;
  }

  mapped_header const& header() const { return header_; }
  std::size_t file_bytes() const { return map_.length; }

 private:
  template <typename T>
  T const* section(std::uint64_t off) const {
    return reinterpret_cast<T const*>(static_cast<std::uint8_t const*>(map_.addr) +
                                      off);
  }

  void validate() {
    if (map_.length < sizeof(mapped_header))
      throw graph_error("mapped_graph: file shorter than header");
    std::memcpy(&header_, map_.addr, sizeof header_);
    if (header_.magic != kMappedMagic)
      throw graph_error("mapped_graph: bad magic (not an essentials block file)");
    if (header_.version != kMappedVersion)
      throw graph_error("mapped_graph: unsupported version");
    if (header_.endian_tag != kEndianTag)
      throw graph_error("mapped_graph: endianness mismatch (file written on "
                        "an incompatible host)");
    if (header_.sizeof_vertex != sizeof(V) ||
        header_.sizeof_edge != sizeof(E) ||
        header_.sizeof_weight != sizeof(W))
      throw graph_error("mapped_graph: element sizes do not match this "
                        "instantiation");
    if (header_.block_edges != graph::blockcodec::block_edges)
      throw graph_error("mapped_graph: file block_edges differs from this "
                        "build's ESSENTIALS_BLOCK_EDGES");
    std::uint64_t const expect_blocks =
        (header_.num_edges + graph::blockcodec::block_edges - 1) /
        graph::blockcodec::block_edges;
    if (header_.num_blocks != expect_blocks)
      throw graph_error("mapped_graph: inconsistent block count");
    auto const check = [this](std::uint64_t off, std::uint64_t len,
                              std::uint64_t expect_len, char const* what) {
      if (off % 8 != 0 || off > map_.length || len > map_.length - off)
        throw graph_error(std::string("mapped_graph: truncated or "
                                      "out-of-bounds section: ") + what);
      if (expect_len != ~0ull && len != expect_len)
        throw graph_error(std::string("mapped_graph: section length "
                                      "mismatch: ") + what);
    };
    check(header_.off_rows, header_.len_rows,
          (header_.num_vertices + 1) * sizeof(std::uint64_t), "row offsets");
    check(header_.off_blocks, header_.len_blocks,
          (header_.num_blocks + 1) * sizeof(std::uint64_t), "block offsets");
    check(header_.off_adj, header_.len_adj, ~0ull, "adjacency");
    check(header_.off_weights, header_.len_weights,
          header_.num_edges * sizeof(W), "weights");
    // The block index must be monotone and stay inside the adjacency
    // section (slop included) or decode's unconditional loads could walk
    // off the file.  With this plus decode_block's count clamp, even a
    // file with garbage *payload* bytes decodes to garbage values without
    // ever reading or writing out of bounds.
    std::uint64_t const* const blk = block_offsets_data();
    for (std::uint64_t b = 0; b < header_.num_blocks; ++b)
      if (blk[b] > blk[b + 1] ||
          blk[b + 1] - blk[b] < sizeof(graph::blockcodec::block_header))
        throw graph_error("mapped_graph: corrupt block index");
    std::uint64_t const adj_end =
        blk[header_.num_blocks] + graph::blockcodec::stream_slop;
    if (adj_end > header_.len_adj)
      throw graph_error("mapped_graph: block index exceeds adjacency section");
    std::uint64_t const* const row = row_offsets_data();
    if (row[header_.num_vertices] != header_.num_edges)
      throw graph_error("mapped_graph: row offsets do not sum to edge count");
  }

  detail::file_mapping map_{};
  mapped_header header_{};
  std::uint64_t cookie_ = 0;
};

}  // namespace essentials::io
