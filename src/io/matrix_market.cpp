#include "io/matrix_market.hpp"

#include <fstream>
#include <sstream>
#include <string>

#include "core/types.hpp"

namespace essentials::io {

namespace {

/// Reads the next line that is neither empty nor a '%' comment.
bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t const first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
      continue;
    if (line[first] == '%')
      continue;
    return true;
  }
  return false;
}

}  // namespace

graph::coo_t<> read_matrix_market(std::istream& in) {
  std::string header;
  if (!std::getline(in, header))
    throw graph_error("matrix_market: empty input");

  std::istringstream hs(header);
  std::string banner, object, format, field, symmetry;
  hs >> banner >> object >> format >> field >> symmetry;
  if (banner != "%%MatrixMarket")
    throw graph_error("matrix_market: missing %%MatrixMarket banner");
  if (object != "matrix" || format != "coordinate")
    throw graph_error("matrix_market: only 'matrix coordinate' is supported");
  bool const pattern = (field == "pattern");
  if (!pattern && field != "real" && field != "integer" && field != "double")
    throw graph_error("matrix_market: unsupported field type '" + field + "'");
  bool const symmetric = (symmetry == "symmetric" || symmetry == "skew-symmetric");
  if (!symmetric && symmetry != "general")
    throw graph_error("matrix_market: unsupported symmetry '" + symmetry + "'");

  std::string line;
  if (!next_content_line(in, line))
    throw graph_error("matrix_market: missing size line");
  long long rows = 0, cols = 0, entries = 0;
  {
    std::istringstream ls(line);
    if (!(ls >> rows >> cols >> entries) || rows < 0 || cols < 0 || entries < 0)
      throw graph_error("matrix_market: malformed size line");
  }

  graph::coo_t<> coo;
  coo.num_rows = static_cast<vertex_t>(rows);
  coo.num_cols = static_cast<vertex_t>(cols);
  coo.reserve(static_cast<std::size_t>(symmetric ? 2 * entries : entries));

  for (long long i = 0; i < entries; ++i) {
    if (!next_content_line(in, line))
      throw graph_error("matrix_market: truncated entry list");
    std::istringstream ls(line);
    long long r = 0, c = 0;
    double w = 1.0;
    if (!(ls >> r >> c))
      throw graph_error("matrix_market: malformed entry line");
    if (!pattern && !(ls >> w))
      throw graph_error("matrix_market: entry missing value");
    if (r < 1 || r > rows || c < 1 || c > cols)
      throw graph_error("matrix_market: entry index out of bounds");
    auto const src = static_cast<vertex_t>(r - 1);
    auto const dst = static_cast<vertex_t>(c - 1);
    coo.push_back(src, dst, static_cast<weight_t>(w));
    if (symmetric && src != dst)
      coo.push_back(dst, src, static_cast<weight_t>(w));
  }
  return coo;
}

graph::coo_t<> read_matrix_market_file(std::string const& path) {
  std::ifstream in(path);
  if (!in)
    throw graph_error("matrix_market: cannot open '" + path + "'");
  return read_matrix_market(in);
}

void write_matrix_market(std::ostream& out, graph::coo_t<> const& coo) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by essentials\n";
  out << coo.num_rows << ' ' << coo.num_cols << ' ' << coo.num_edges() << '\n';
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    out << (coo.row_indices[i] + 1) << ' ' << (coo.column_indices[i] + 1)
        << ' ' << coo.values[i] << '\n';
}

}  // namespace essentials::io
