#include "io/mapped.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <vector>

#include "core/types.hpp"

#if defined(__unix__) || defined(__APPLE__)
#define ESSENTIALS_HAS_MMAP 1
#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>
#else
#define ESSENTIALS_HAS_MMAP 0
#endif

namespace essentials::io::detail {

std::size_t page_size() noexcept {
#if ESSENTIALS_HAS_MMAP
  long const p = ::sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : 4096;
#else
  return 4096;
#endif
}

file_mapping map_readonly(std::string const& path) {
  file_mapping m;
#if ESSENTIALS_HAS_MMAP
  int const fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0)
    throw graph_error("mapped_graph: cannot open '" + path + "'");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size < 0) {
    ::close(fd);
    throw graph_error("mapped_graph: cannot stat '" + path + "'");
  }
  m.length = static_cast<std::size_t>(st.st_size);
  if (m.length == 0) {
    ::close(fd);
    throw graph_error("mapped_graph: empty file '" + path + "'");
  }
  void* const addr = ::mmap(nullptr, m.length, PROT_READ, MAP_PRIVATE, fd, 0);
  if (addr == MAP_FAILED) {
    ::close(fd);
    throw graph_error("mapped_graph: mmap failed for '" + path + "'");
  }
  m.addr = addr;
  m.fd = fd;
  m.heap = false;
#else
  // Portable fallback: read the whole file into heap memory.  Loses
  // demand paging but keeps the format and API working everywhere.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in)
    throw graph_error("mapped_graph: cannot open '" + path + "'");
  auto const size = static_cast<std::size_t>(in.tellg());
  if (size == 0)
    throw graph_error("mapped_graph: empty file '" + path + "'");
  in.seekg(0);
  auto* buf = new std::uint8_t[size];
  in.read(reinterpret_cast<char*>(buf), static_cast<std::streamsize>(size));
  if (!in) {
    delete[] buf;
    throw graph_error("mapped_graph: short read from '" + path + "'");
  }
  m.addr = buf;
  m.length = size;
  m.fd = -1;
  m.heap = true;
#endif
  return m;
}

void unmap(file_mapping& m) noexcept {
  if (m.addr == nullptr) {
    m = file_mapping{};
    return;
  }
#if ESSENTIALS_HAS_MMAP
  if (!m.heap) {
    ::munmap(m.addr, m.length);
    if (m.fd >= 0)
      ::close(m.fd);
    m = file_mapping{};
    return;
  }
#endif
  delete[] static_cast<std::uint8_t*>(m.addr);
  m = file_mapping{};
}

void advise(file_mapping const& m, std::size_t offset, std::size_t length,
            [[maybe_unused]] advice a) noexcept {
#if ESSENTIALS_HAS_MMAP
  if (m.addr == nullptr || m.heap || length == 0 || offset >= m.length)
    return;
  length = std::min(length, m.length - offset);
  // madvise wants page-aligned addresses: widen to page boundaries.
  std::size_t const page = page_size();
  std::size_t const lo = offset / page * page;
  std::size_t const hi = (offset + length + page - 1) / page * page;
  int native = MADV_NORMAL;
  switch (a) {
    case advice::normal: native = MADV_NORMAL; break;
    case advice::sequential: native = MADV_SEQUENTIAL; break;
    case advice::random: native = MADV_RANDOM; break;
    case advice::willneed: native = MADV_WILLNEED; break;
    case advice::dontneed: native = MADV_DONTNEED; break;
  }
  ::madvise(static_cast<std::uint8_t*>(m.addr) + lo,
            std::min(hi, m.length) - lo, native);
#else
  (void)m;
  (void)offset;
  (void)length;
#endif
}

std::size_t process_resident_bytes() noexcept {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/statm", "r");
  if (f == nullptr)
    return 0;
  unsigned long total = 0, resident = 0;
  int const got = std::fscanf(f, "%lu %lu", &total, &resident);
  std::fclose(f);
  if (got != 2)
    return 0;
  return static_cast<std::size_t>(resident) * page_size();
#else
  return 0;
#endif
}

namespace {
void pad_to_page(std::ofstream& out) {
  static char const zeros[kMappedPage] = {};
  auto const pos = static_cast<std::uint64_t>(out.tellp());
  std::uint64_t const pad =
      (kMappedPage - pos % kMappedPage) % kMappedPage;
  out.write(zeros, static_cast<std::streamsize>(pad));
}
}  // namespace

void write_mapped_sections(std::string const& path, mapped_header const& h,
                           void const* rows, void const* blocks,
                           void const* adj, void const* weights) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw graph_error("write_mapped_graph: cannot open '" + path +
                      "' for writing");
  out.write(reinterpret_cast<char const*>(&h),
            static_cast<std::streamsize>(sizeof h));
  pad_to_page(out);
  auto const section = [&out](void const* data, std::uint64_t len) {
    out.write(static_cast<char const*>(data),
              static_cast<std::streamsize>(len));
    pad_to_page(out);
  };
  section(rows, h.len_rows);
  section(blocks, h.len_blocks);
  section(adj, h.len_adj);
  section(weights, h.len_weights);
  out.flush();
  if (!out)
    throw graph_error("write_mapped_graph: write failed for '" + path + "'");
}

}  // namespace essentials::io::detail
