#pragma once

/// \file io/dot.hpp
/// \brief Graphviz DOT exporter — visualization is half of small-graph
/// debugging.  Writes directed or undirected DOT with optional weight
/// labels and per-vertex attributes (e.g. a partition or component id
/// mapped to a color), capped by a vertex budget so a stray call on a
/// million-vertex graph cannot produce a gigabyte of text.

#include <iosfwd>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "graph/formats.hpp"

namespace essentials::io {

struct dot_options {
  bool undirected = false;       ///< emit `graph`/`--` instead of `digraph`/`->`
  bool weight_labels = true;     ///< annotate edges with weights
  vertex_t max_vertices = 1000;  ///< refuse larger graphs (graph_error)
  /// Optional per-vertex group (e.g. partition/component id) rendered as a
  /// fill color; empty = no grouping.
  std::vector<int> groups;
};

/// Write `coo` as DOT.  For undirected output, each {u, v} pair is emitted
/// once (u <= v edge kept).
void write_dot(std::ostream& out, graph::coo_t<> const& coo,
               dot_options const& opt = {});

}  // namespace essentials::io
