#pragma once

/// \file io/binary.hpp
/// \brief Binary CSR snapshot: a versioned, magic-tagged dump of the three
/// CSR arrays, for fast reload of graphs that are expensive to build
/// (sorting + dedup of a large R-MAT dominates end-to-end bench time).

#include <iosfwd>
#include <string>

#include "graph/formats.hpp"

namespace essentials::io {

void write_binary_csr(std::ostream& out, graph::csr_t<> const& csr);
void write_binary_csr_file(std::string const& path, graph::csr_t<> const& csr);

/// Throws graph_error on bad magic/version/truncation.
graph::csr_t<> read_binary_csr(std::istream& in);
graph::csr_t<> read_binary_csr_file(std::string const& path);

}  // namespace essentials::io
