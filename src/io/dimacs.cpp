#include "io/dimacs.hpp"

#include <fstream>
#include <sstream>

#include "core/types.hpp"

namespace essentials::io {

graph::coo_t<> read_dimacs(std::istream& in) {
  graph::coo_t<> coo;
  bool seen_problem = false;
  long long n = 0, m = 0;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty())
      continue;
    switch (line[0]) {
      case 'c':
        break;  // comment
      case 'p': {
        std::istringstream ls(line);
        std::string p, sp;
        if (!(ls >> p >> sp >> n >> m) || sp != "sp" || n < 0 || m < 0)
          throw graph_error("dimacs: malformed problem line " +
                            std::to_string(line_no));
        seen_problem = true;
        coo.num_rows = coo.num_cols = static_cast<vertex_t>(n);
        coo.reserve(static_cast<std::size_t>(m));
        break;
      }
      case 'a': {
        if (!seen_problem)
          throw graph_error("dimacs: arc before problem line");
        std::istringstream ls(line);
        char a;
        long long u = 0, v = 0;
        double w = 0;
        if (!(ls >> a >> u >> v >> w))
          throw graph_error("dimacs: malformed arc line " +
                            std::to_string(line_no));
        if (u < 1 || u > n || v < 1 || v > n)
          throw graph_error("dimacs: arc endpoint out of range on line " +
                            std::to_string(line_no));
        coo.push_back(static_cast<vertex_t>(u - 1),
                      static_cast<vertex_t>(v - 1),
                      static_cast<weight_t>(w));
        break;
      }
      default:
        throw graph_error("dimacs: unknown line type on line " +
                          std::to_string(line_no));
    }
  }
  if (!seen_problem)
    throw graph_error("dimacs: missing problem line");
  return coo;
}

graph::coo_t<> read_dimacs_file(std::string const& path) {
  std::ifstream in(path);
  if (!in)
    throw graph_error("dimacs: cannot open '" + path + "'");
  return read_dimacs(in);
}

void write_dimacs(std::ostream& out, graph::coo_t<> const& coo) {
  out << "c written by essentials\n";
  out << "p sp " << coo.num_rows << ' ' << coo.num_edges() << '\n';
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    out << "a " << (coo.row_indices[i] + 1) << ' '
        << (coo.column_indices[i] + 1) << ' '
        << static_cast<long long>(coo.values[i]) << '\n';
}

}  // namespace essentials::io
