#pragma once

/// \file io/edge_list.hpp
/// \brief Whitespace-separated edge-list loader (the SNAP dataset format):
/// one `src dst [weight]` per line, `#` or `%` comments, 0-based ids.
/// Vertex count is inferred as max id + 1 unless overridden.

#include <iosfwd>
#include <string>

#include "core/types.hpp"
#include "graph/formats.hpp"

namespace essentials::io {

struct edge_list_options {
  weight_t default_weight = 1.0f;  ///< used for 2-column lines
  vertex_t num_vertices = 0;       ///< 0 -> infer from max id + 1
};

graph::coo_t<> read_edge_list(std::istream& in, edge_list_options const& opt = {});
graph::coo_t<> read_edge_list_file(std::string const& path,
                                   edge_list_options const& opt = {});

/// Write `src dst weight` lines.
void write_edge_list(std::ostream& out, graph::coo_t<> const& coo);

}  // namespace essentials::io
