#pragma once

/// \file io/metis.hpp
/// \brief METIS .graph format reader/writer — the input format of the
/// partitioner family the paper's Table I names.  Format: first line
/// `n m [fmt]` (fmt 0 = plain, 1 = edge weights), then one line per vertex
/// listing its 1-based neighbors (and weights when fmt == 1); `%` comments.
/// METIS graphs are undirected: each edge appears in both endpoint lines.

#include <iosfwd>
#include <string>

#include "graph/formats.hpp"

namespace essentials::io {

/// Parse a METIS .graph stream into COO (both directions of every edge, as
/// the format stores them).  Throws graph_error on malformed input.
graph::coo_t<> read_metis(std::istream& in);
graph::coo_t<> read_metis_file(std::string const& path);

/// Write a (symmetric) COO as METIS .graph with edge weights (fmt 001).
void write_metis(std::ostream& out, graph::coo_t<> const& coo);

}  // namespace essentials::io
