#pragma once

/// \file io/matrix_market.hpp
/// \brief MatrixMarket (.mtx) coordinate-format reader/writer.
///
/// The lingua franca of the sparse-graph world (SuiteSparse collection).
/// Supports `matrix coordinate {real|integer|pattern} {general|symmetric}`;
/// symmetric inputs are expanded to both directions, pattern inputs get
/// unit weights.  Indices are converted from MatrixMarket's 1-based
/// convention to our 0-based one.

#include <iosfwd>
#include <string>

#include "graph/formats.hpp"

namespace essentials::io {

/// Parse an .mtx stream into COO.  Throws graph_error on malformed input.
graph::coo_t<> read_matrix_market(std::istream& in);

/// Convenience: open and parse a file by path.
graph::coo_t<> read_matrix_market_file(std::string const& path);

/// Serialize COO as `matrix coordinate real general`.
void write_matrix_market(std::ostream& out, graph::coo_t<> const& coo);

}  // namespace essentials::io
