#include "io/edge_list.hpp"

#include <algorithm>
#include <fstream>
#include <sstream>

namespace essentials::io {

graph::coo_t<> read_edge_list(std::istream& in, edge_list_options const& opt) {
  graph::coo_t<> coo;
  vertex_t max_id = -1;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    std::size_t const first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#' || line[first] == '%')
      continue;
    std::istringstream ls(line);
    long long u = 0, v = 0;
    double w = opt.default_weight;
    if (!(ls >> u >> v))
      throw graph_error("edge_list: malformed line " + std::to_string(line_no));
    ls >> w;  // optional third column
    if (u < 0 || v < 0)
      throw graph_error("edge_list: negative vertex id on line " +
                        std::to_string(line_no));
    auto const src = static_cast<vertex_t>(u);
    auto const dst = static_cast<vertex_t>(v);
    max_id = std::max({max_id, src, dst});
    coo.push_back(src, dst, static_cast<weight_t>(w));
  }
  vertex_t const inferred = max_id + 1;
  if (opt.num_vertices > 0) {
    if (opt.num_vertices < inferred)
      throw graph_error("edge_list: explicit vertex count smaller than max id");
    coo.num_rows = coo.num_cols = opt.num_vertices;
  } else {
    coo.num_rows = coo.num_cols = inferred;
  }
  return coo;
}

graph::coo_t<> read_edge_list_file(std::string const& path,
                                   edge_list_options const& opt) {
  std::ifstream in(path);
  if (!in)
    throw graph_error("edge_list: cannot open '" + path + "'");
  return read_edge_list(in, opt);
}

void write_edge_list(std::ostream& out, graph::coo_t<> const& coo) {
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    out << coo.row_indices[i] << '\t' << coo.column_indices[i] << '\t'
        << coo.values[i] << '\n';
}

}  // namespace essentials::io
