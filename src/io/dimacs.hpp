#pragma once

/// \file io/dimacs.hpp
/// \brief 9th DIMACS shortest-path challenge `.gr` reader — the standard
/// distribution format of real road networks (the workload family our
/// grid generator substitutes for).  Format: `c` comments, one
/// `p sp <n> <m>` problem line, `a <src> <dst> <weight>` arcs, 1-based ids.

#include <iosfwd>
#include <string>

#include "graph/formats.hpp"

namespace essentials::io {

graph::coo_t<> read_dimacs(std::istream& in);
graph::coo_t<> read_dimacs_file(std::string const& path);

/// Write a COO as a DIMACS .gr problem (weights rounded to long long).
void write_dimacs(std::ostream& out, graph::coo_t<> const& coo);

}  // namespace essentials::io
