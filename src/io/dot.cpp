#include "io/dot.hpp"

#include <array>
#include <ostream>

namespace essentials::io {

void write_dot(std::ostream& out, graph::coo_t<> const& coo,
               dot_options const& opt) {
  expects(coo.num_rows <= opt.max_vertices,
          "write_dot: graph exceeds max_vertices (visualization cap)");
  expects(opt.groups.empty() ||
              opt.groups.size() == static_cast<std::size_t>(coo.num_rows),
          "write_dot: groups size mismatch");

  // A small qualitative palette, cycled by group id.
  constexpr std::array<char const*, 8> kPalette = {
      "#8dd3c7", "#ffffb3", "#bebada", "#fb8072",
      "#80b1d3", "#fdb462", "#b3de69", "#fccde5"};

  out << (opt.undirected ? "graph" : "digraph") << " g {\n";
  out << "  node [shape=circle, style=filled, fillcolor=white];\n";
  if (!opt.groups.empty()) {
    for (vertex_t v = 0; v < coo.num_rows; ++v) {
      auto const group = opt.groups[static_cast<std::size_t>(v)];
      out << "  " << v << " [fillcolor=\""
          << kPalette[static_cast<std::size_t>(group) % kPalette.size()]
          << "\"];\n";
    }
  }
  char const* const arrow = opt.undirected ? " -- " : " -> ";
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i) {
    auto const u = coo.row_indices[i];
    auto const v = coo.column_indices[i];
    if (opt.undirected && u > v)
      continue;  // one line per undirected pair
    out << "  " << u << arrow << v;
    if (opt.weight_labels)
      out << " [label=\"" << coo.values[i] << "\"]";
    out << ";\n";
  }
  out << "}\n";
}

}  // namespace essentials::io
