#include "io/metis.hpp"

#include <fstream>
#include <sstream>
#include <vector>

#include "core/types.hpp"
#include "graph/build.hpp"

namespace essentials::io {

namespace {

bool next_content_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t const first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos)
      continue;
    if (line[first] == '%')
      continue;
    return true;
  }
  return false;
}

}  // namespace

graph::coo_t<> read_metis(std::istream& in) {
  std::string line;
  if (!next_content_line(in, line))
    throw graph_error("metis: empty input");
  long long n = 0, m = 0;
  std::string fmt = "0";
  {
    std::istringstream hs(line);
    if (!(hs >> n >> m) || n < 0 || m < 0)
      throw graph_error("metis: malformed header");
    hs >> fmt;  // optional
  }
  bool const edge_weights = fmt.size() >= 1 && fmt.back() == '1';
  if (fmt != "0" && fmt != "1" && fmt != "001" && fmt != "000")
    throw graph_error("metis: unsupported fmt '" + fmt +
                      "' (vertex weights not supported)");

  graph::coo_t<> coo;
  coo.num_rows = coo.num_cols = static_cast<vertex_t>(n);
  coo.reserve(static_cast<std::size_t>(2 * m));
  for (long long v = 0; v < n; ++v) {
    if (!next_content_line(in, line))
      throw graph_error("metis: missing adjacency line for vertex " +
                        std::to_string(v + 1));
    std::istringstream ls(line);
    long long nb = 0;
    while (ls >> nb) {
      if (nb < 1 || nb > n)
        throw graph_error("metis: neighbor out of range on vertex " +
                          std::to_string(v + 1));
      double w = 1.0;
      if (edge_weights && !(ls >> w))
        throw graph_error("metis: missing edge weight on vertex " +
                          std::to_string(v + 1));
      coo.push_back(static_cast<vertex_t>(v), static_cast<vertex_t>(nb - 1),
                    static_cast<weight_t>(w));
    }
  }
  if (coo.num_edges() != static_cast<edge_t>(2 * m))
    throw graph_error("metis: header claims " + std::to_string(m) +
                      " edges but adjacency lists hold " +
                      std::to_string(coo.num_edges() / 2) + " pairs");
  return coo;
}

graph::coo_t<> read_metis_file(std::string const& path) {
  std::ifstream in(path);
  if (!in)
    throw graph_error("metis: cannot open '" + path + "'");
  return read_metis(in);
}

void write_metis(std::ostream& out, graph::coo_t<> const& coo) {
  // Build per-vertex adjacency from the (assumed symmetric) COO.
  std::size_t const n = static_cast<std::size_t>(coo.num_rows);
  std::vector<std::vector<std::pair<vertex_t, weight_t>>> adjacency(n);
  for (std::size_t i = 0; i < coo.row_indices.size(); ++i)
    adjacency[static_cast<std::size_t>(coo.row_indices[i])].emplace_back(
        coo.column_indices[i], coo.values[i]);
  out << n << ' ' << coo.num_edges() / 2 << " 001\n";
  for (std::size_t v = 0; v < n; ++v) {
    bool first = true;
    for (auto const& [nb, w] : adjacency[v]) {
      if (!first)
        out << ' ';
      out << (nb + 1) << ' ' << w;
      first = false;
    }
    out << '\n';
  }
}

}  // namespace essentials::io
