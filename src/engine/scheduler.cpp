#include "engine/scheduler.hpp"

#include <exception>

namespace essentials::engine {

job_scheduler::job_scheduler(scheduler_options opt, engine_stats* stats)
    : opt_{opt.num_runners == 0 ? 1 : opt.num_runners, opt.max_queued},
      stats_(stats) {
  runners_.reserve(opt_.num_runners);
  for (std::size_t i = 0; i < opt_.num_runners; ++i)
    runners_.emplace_back([this] { runner_loop(); });
}

job_scheduler::~job_scheduler() {
  shutdown(/*run_queued=*/false);
}

job_ptr job_scheduler::submit(job_desc desc, job_fn fn,
                              std::uint64_t graph_epoch) {
  auto const now = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  // The handle is created under the lock so ids are dense and ordered.
  job_ptr j(new job(next_id_++, std::move(desc)));
  j->submitted_at_ = now;
  j->epoch_ = graph_epoch;
  if (j->desc_.deadline.count() > 0)
    j->budget_ = enactor::time_budget::until(now + j->desc_.deadline);
  j->fn_ = std::move(fn);

  if (stopping_) {
    lock.unlock();
    retire(j, job_status::rejected, nullptr, "scheduler is shut down");
    if (stats_)
      stats_->on_rejected();
    return j;
  }
  if (queue_.size() >= opt_.max_queued) {
    lock.unlock();
    retire(j, job_status::rejected, nullptr,
           "admission control: queue full (" +
               std::to_string(opt_.max_queued) + " waiting jobs)");
    if (stats_)
      stats_->on_rejected();
    return j;
  }

  queue_.push(queued_item{j->desc_.priority, next_seq_++, j});
  if (stats_)
    stats_->on_submitted();
  lock.unlock();
  work_cv_.notify_one();
  return j;
}

void job_scheduler::shutdown(bool run_queued) {
  std::vector<job_ptr> dropped;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!stopping_) {
      stopping_ = true;
      drain_backlog_ = run_queued;
    }
    if (!drain_backlog_) {
      // Lossless drain: every queued job retires as cancelled — accounted,
      // never silently lost.
      while (!queue_.empty()) {
        dropped.push_back(queue_.top().j);
        queue_.pop();
      }
    }
  }
  work_cv_.notify_all();
  for (auto const& j : dropped) {
    count_terminal(job_status::cancelled);
    retire(j, job_status::cancelled, nullptr, "scheduler shutdown");
  }
  for (auto& r : runners_)
    if (r.joinable())
      r.join();
}

std::size_t job_scheduler::queued() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return queue_.size();
}

std::size_t job_scheduler::running() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return running_;
}

void job_scheduler::runner_loop() {
  for (;;) {
    job_ptr j;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_)
          return;
        continue;  // spurious wake with an empty queue
      }
      if (stopping_ && !drain_backlog_)
        return;  // backlog already retired by shutdown()
      j = queue_.top().j;
      queue_.pop();
      ++running_;
    }
    run_job(j);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      --running_;
    }
  }
}

void job_scheduler::run_job(job_ptr const& j) {
  auto const popped_at = std::chrono::steady_clock::now();
  double const queue_ms =
      std::chrono::duration<double, std::milli>(popped_at - j->submitted_at_)
          .count();
  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->queue_ms_ = queue_ms;
  }
  if (stats_)
    stats_->add_queue_wait_ms(queue_ms);

  // Pre-run triage: a job whose deadline elapsed while it queued, or that
  // was cancelled while waiting, never enacts — queue wait counts against
  // the latency budget, as it must in a serving system.
  if (j->budget_.expired()) {
    count_terminal(job_status::deadline_expired);
    retire(j, job_status::deadline_expired, nullptr,
           "deadline elapsed while queued");
    return;
  }
  if (j->token_.cancelled()) {
    count_terminal(job_status::cancelled);
    retire(j, job_status::cancelled, nullptr, "cancelled while queued");
    return;
  }

  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->status_ = job_status::running;
  }
  if (stats_)
    stats_->on_enacted();

  job_context ctx(j->token_, j->budget_, &j->fired_, &j->warm_);
  std::shared_ptr<void const> result;
  std::string error;
  bool threw = false;
  auto const run_start = std::chrono::steady_clock::now();
  {
    // Job-scoped telemetry: record_trace jobs get a trace tagged with
    // their id/tag/epoch (telemetry schema v3) captured on this runner
    // thread; others pay one null-pointer test.
    std::unique_ptr<telemetry::scoped_recording> recording;
    if (j->desc_.record_trace) {
      recording = std::make_unique<telemetry::scoped_recording>(
          j->trace_, j->desc_.algorithm);
      j->trace_.job_id = j->id_;
      j->trace_.job_tag = j->desc_.algorithm +
                          (j->desc_.params.empty() ? std::string{}
                                                   : "(" + j->desc_.params + ")");
      j->trace_.graph_epoch = j->epoch_;
    }
    try {
      result = j->fn_(ctx);
    } catch (std::exception const& e) {
      threw = true;
      error = e.what();
    } catch (...) {
      threw = true;
      error = "unknown exception";
    }
    if (j->desc_.record_trace) {
      // Warm-start attribution (telemetry schema v4), stamped while the
      // recording is still scoped to this job's trace.
      j->trace_.warm_start =
          j->warm_.warm_start.load(std::memory_order_relaxed);
      j->trace_.delta_edges =
          j->warm_.delta_edges.load(std::memory_order_relaxed);
      j->trace_.supersteps_saved =
          j->warm_.supersteps_saved.load(std::memory_order_relaxed);
    }
  }
  if (stats_) {
    if (j->warm_.warm_start.load(std::memory_order_relaxed))
      stats_->on_warm_start_hit();
    if (j->warm_.delta_fallback.load(std::memory_order_relaxed))
      stats_->on_delta_fallback();
  }
  double const run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - run_start)
                            .count();
  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->run_ms_ = run_ms;
  }
  if (stats_)
    stats_->add_run_ms(run_ms);

  job_status status;
  if (threw) {
    status = job_status::failed;
  } else {
    // Classify from the context's fired record, not from re-reading racy
    // clocks: a job that converged naturally a hair before its deadline is
    // `completed`, not `deadline_expired`.
    switch (j->fired_.load(std::memory_order_relaxed)) {
      case job_context::kFiredDeadline:
        status = job_status::deadline_expired;
        break;
      case job_context::kFiredCancelled:
        status = job_status::cancelled;
        break;
      default:
        status = job_status::completed;
        break;
    }
  }
  // Count *before* retiring: retire() wakes waiters, and a thread that
  // observed the terminal status must see the stats already reflect it
  // (engine tests read stats() right after wait() returns).
  count_terminal(status);
  retire(j, status, status == job_status::completed ? std::move(result) : nullptr,
         std::move(error));
}

void job_scheduler::retire(job_ptr const& j, job_status s,
                           std::shared_ptr<void const> result,
                           std::string error) {
  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->status_ = s;
    j->result_ = std::move(result);
    j->error_ = std::move(error);
  }
  j->done_cv_.notify_all();
}

void job_scheduler::count_terminal(job_status s) {
  if (!stats_)
    return;
  switch (s) {
    case job_status::completed:
      stats_->on_completed();
      break;
    case job_status::failed:
      stats_->on_failed();
      break;
    case job_status::cancelled:
      stats_->on_cancelled();
      break;
    case job_status::deadline_expired:
      stats_->on_deadline_expired();
      break;
    default:
      break;
  }
}

}  // namespace essentials::engine
