#include "engine/scheduler.hpp"

#include <algorithm>
#include <exception>

#include "engine/batcher.hpp"
#include "parallel/thread_pool.hpp"

namespace essentials::engine {

job_scheduler::job_scheduler(scheduler_options opt, engine_stats* stats)
    : opt_{opt.num_runners == 0 ? 1 : opt.num_runners, opt.max_queued},
      stats_(stats) {
  runners_.reserve(opt_.num_runners);
  for (std::size_t i = 0; i < opt_.num_runners; ++i)
    runners_.emplace_back([this] { runner_loop(); });
}

job_scheduler::~job_scheduler() {
  shutdown(/*run_queued=*/false);
}

job_ptr job_scheduler::submit(job_desc desc, job_fn fn,
                              std::uint64_t graph_epoch) {
  return submit(std::move(desc), std::move(fn), graph_epoch, nullptr);
}

job_ptr job_scheduler::submit(job_desc desc, job_fn fn,
                              std::uint64_t graph_epoch,
                              std::shared_ptr<batch_spec> batch) {
  auto const now = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mutex_);
  // The handle is created under the lock so ids are dense and ordered.
  job_ptr j(new job(next_id_++, std::move(desc)));
  j->submitted_at_ = now;
  j->epoch_ = graph_epoch;
  if (j->desc_.deadline.count() > 0)
    j->budget_ = enactor::time_budget::until(now + j->desc_.deadline);
  j->fn_ = std::move(fn);
  j->batch_ = std::move(batch);

  if (stopping_) {
    lock.unlock();
    retire(j, job_status::rejected, nullptr, "scheduler is shut down");
    if (stats_)
      stats_->on_rejected();
    return j;
  }
  if (queue_.size() >= opt_.max_queued) {
    lock.unlock();
    retire(j, job_status::rejected, nullptr,
           "admission control: queue full (" +
               std::to_string(opt_.max_queued) + " waiting jobs)");
    if (stats_)
      stats_->on_rejected();
    return j;
  }

  queue_.push(queued_item{j->desc_.priority, next_seq_++, j});
  if (stats_)
    stats_->on_submitted();
  lock.unlock();
  work_cv_.notify_one();
  return j;
}

void job_scheduler::shutdown(bool run_queued) {
  std::vector<job_ptr> dropped;
  {
    std::lock_guard<std::mutex> guard(mutex_);
    if (!stopping_) {
      stopping_ = true;
      drain_backlog_ = run_queued;
    }
    if (!drain_backlog_) {
      // Lossless drain: every queued job retires as cancelled — accounted,
      // never silently lost.
      while (!queue_.empty()) {
        dropped.push_back(queue_.top().j);
        queue_.pop();
      }
    }
  }
  work_cv_.notify_all();
  for (auto const& j : dropped) {
    count_terminal(job_status::cancelled);
    retire(j, job_status::cancelled, nullptr, "scheduler shutdown");
  }
  for (auto& r : runners_)
    if (r.joinable())
      r.join();
}

std::size_t job_scheduler::queued() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return queue_.size();
}

std::size_t job_scheduler::running() const {
  std::lock_guard<std::mutex> guard(mutex_);
  return running_;
}

void job_scheduler::runner_loop() {
  // Runners are the dominant run_blocked callers: claim a stable external
  // lane on the default pool up front so every superstep this runner
  // coordinates distributes its chunks through a stealable deque instead
  // of the central injector.  No-op on the central substrate.
  parallel::default_pool().register_external_lane();
  for (;;) {
    job_ptr j;
    std::vector<job_ptr> fused;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stopping_)
          return;
        continue;  // spurious wake with an empty queue
      }
      if (stopping_ && !drain_backlog_)
        return;  // backlog already retired by shutdown()
      j = queue_.top().j;
      queue_.pop();
      ++running_;
      // Dequeue-time fusion window: a batchable pop also claims every
      // queued job with the same batch key (engine/batcher.hpp).
      if (opt_.batching && opt_.batch_window > 1 && j->batch_)
        fused = collect_batch_locked(j);
    }
    std::size_t const claimed = fused.empty() ? 1 : fused.size();
    if (fused.empty())
      run_job(j);
    else
      run_fused(fused);
    {
      std::lock_guard<std::mutex> guard(mutex_);
      running_ -= claimed;
    }
  }
}

std::vector<job_ptr> job_scheduler::collect_batch_locked(job_ptr const& first) {
  if (queue_.empty())
    return {};
  std::string const& key = first->batch_->key;
  std::vector<job_ptr> members;
  members.push_back(first);
  // std::priority_queue cannot be scanned in place: pop everything, keep
  // key matches, re-push the rest with their original (priority, seq) so
  // ordering is undisturbed.  O(Q log Q) under the lock, bounded by
  // `max_queued` — the admission bound that already sizes the queue.
  std::vector<queued_item> keep;
  keep.reserve(queue_.size());
  while (!queue_.empty()) {
    queued_item item = queue_.top();
    queue_.pop();
    if (members.size() < opt_.batch_window && item.j->batch_ &&
        item.j->batch_->key == key)
      members.push_back(std::move(item.j));
    else
      keep.push_back(std::move(item));
  }
  for (auto& item : keep)
    queue_.push(std::move(item));
  if (members.size() == 1)
    return {};  // no partner queued: the solo body is the right enactment
  running_ += members.size() - 1;  // the runner now carries them all
  return members;
}

void job_scheduler::run_fused(std::vector<job_ptr> const& members) {
  auto const popped_at = std::chrono::steady_clock::now();

  // Pre-lane triage, mirroring run_job member by member: stamp queue wait,
  // drop members whose deadline elapsed or cancel token fired while they
  // queued, then run each member's *own* dequeue-time cache probe — before
  // lane assignment, so a member an identical earlier job already
  // satisfied retires `cache_hit` and never occupies a lane.
  std::vector<job_ptr> live;
  live.reserve(members.size());
  for (auto const& j : members) {
    double const queue_ms = std::chrono::duration<double, std::milli>(
                                popped_at - j->submitted_at_)
                                .count();
    {
      std::lock_guard<std::mutex> guard(j->mutex_);
      j->queue_ms_ = queue_ms;
    }
    if (stats_)
      stats_->add_queue_wait_ms(queue_ms);

    if (j->budget_.expired()) {
      count_terminal(job_status::deadline_expired);
      retire(j, job_status::deadline_expired, nullptr,
             "deadline elapsed while queued");
      continue;
    }
    if (j->token_.cancelled()) {
      count_terminal(job_status::cancelled);
      retire(j, job_status::cancelled, nullptr, "cancelled while queued");
      continue;
    }
    if (j->desc_.use_cache && j->batch_->cache_probe) {
      if (auto hit = j->batch_->cache_probe()) {
        retire(j, job_status::cache_hit, std::move(hit), {});
        continue;
      }
    }
    live.push_back(j);
  }

  // Wave chunking: at most `max_lanes` (≤ 64 bit lanes) members share one
  // fused enactment; a larger window spills into further waves.
  if (live.empty())
    return;
  std::size_t max_lanes = live.front()->batch_->max_lanes;
  if (max_lanes == 0)
    max_lanes = 1;
  if (max_lanes > 64)
    max_lanes = 64;
  for (std::size_t offset = 0; offset < live.size(); offset += max_lanes) {
    std::size_t const count = std::min(max_lanes, live.size() - offset);
    run_wave(std::vector<job_ptr>(live.begin() + static_cast<std::ptrdiff_t>(offset),
                                  live.begin() + static_cast<std::ptrdiff_t>(offset + count)));
  }
}

void job_scheduler::run_wave(std::vector<job_ptr> const& wave) {
  std::size_t const n = wave.size();
  // A wave of one (triage evaporated its partners, or a spill remainder)
  // still enacts through the fused body — same lane-packed code path, so
  // the result is identical — but is not *accounted* as a batch: nothing
  // was shared, no pass was saved, and batch attribution stays zero
  // (telemetry's `batch_size == 0` == unbatched).
  bool const fused_wave = n > 1;
  std::uint64_t const batch_id =
      fused_wave ? next_batch_id_.fetch_add(1, std::memory_order_relaxed) : 0;

  for (std::size_t i = 0; i < n; ++i) {
    job_ptr const& j = wave[i];
    {
      std::lock_guard<std::mutex> guard(j->mutex_);
      j->status_ = job_status::running;
      if (fused_wave) {
        j->batch_id_ = batch_id;
        j->batch_size_ = static_cast<std::uint32_t>(n);
        j->lane_ = static_cast<std::uint32_t>(i);
      }
    }
    if (stats_)
      stats_->on_enacted();
  }

  // Per-member contexts in stable storage; each lane points at its own, so
  // deadlines/cancellation stay per-member inside the shared enactment
  // (live_lane_mask re-evaluates them every superstep).
  std::vector<job_context> ctxs;
  ctxs.reserve(n);
  for (auto const& j : wave)
    ctxs.emplace_back(j->token_, j->budget_, &j->fired_, &j->warm_);
  std::vector<batch_lane> lanes;
  lanes.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    lanes.push_back(batch_lane{wave[i]->batch_->payload, &ctxs[i]});

  fused_outcome out;
  std::string error;
  bool threw = false;
  auto const run_start = std::chrono::steady_clock::now();
  {
    // One recorder per thread: the fused superstep stream is recorded into
    // the first record_trace member's trace; *every* record_trace member's
    // trace gets the schema-v5 batch attribution (batch_id / batch_size /
    // lane), so fused enactments are visible from any member's handle.
    std::unique_ptr<telemetry::scoped_recording> recording;
    for (std::size_t i = 0; i < n; ++i) {
      job_ptr const& j = wave[i];
      if (!j->desc_.record_trace)
        continue;
      if (!recording)
        recording = std::make_unique<telemetry::scoped_recording>(
            j->trace_, j->desc_.algorithm);
      j->trace_.job_id = j->id_;
      j->trace_.job_tag =
          j->desc_.algorithm +
          (j->desc_.params.empty() ? std::string{}
                                   : "(" + j->desc_.params + ")");
      j->trace_.graph_epoch = j->epoch_;
      if (fused_wave) {
        j->trace_.batch_id = batch_id;
        j->trace_.batch_size = static_cast<std::uint32_t>(n);
        j->trace_.lane = static_cast<std::uint32_t>(i);
      }
    }
    try {
      // Key equality pinned one snapshot + algorithm for the whole wave,
      // so any member's fused body enacts for all; use the first.
      out = wave.front()->batch_->fused(lanes);
    } catch (std::exception const& e) {
      threw = true;
      error = e.what();
    } catch (...) {
      threw = true;
      error = "unknown exception";
    }
  }
  double const run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - run_start)
                            .count();

  // Wave accounting: one traversal served n members — the saved passes are
  // the batching win the stats export surfaces (engine stats v3).
  if (!threw && fused_wave && stats_) {
    std::size_t const passes = out.edge_passes == 0 ? 1 : out.edge_passes;
    stats_->on_batch(n, passes < n ? n - passes : 0);
  }

  // Demux: classify and retire each member from its *own* fired record;
  // publish each completed member's result under its own cache key.
  for (std::size_t i = 0; i < n; ++i) {
    job_ptr const& j = wave[i];
    {
      std::lock_guard<std::mutex> guard(j->mutex_);
      j->run_ms_ = run_ms;  // each member waited the wave's wall time
    }
    if (stats_)
      stats_->add_run_ms(run_ms);

    std::shared_ptr<void const> result;
    if (!threw && i < out.results.size())
      result = out.results[i];

    job_status status;
    if (threw) {
      status = job_status::failed;
    } else {
      switch (j->fired_.load(std::memory_order_relaxed)) {
        case job_context::kFiredDeadline:
          status = job_status::deadline_expired;
          break;
        case job_context::kFiredCancelled:
          status = job_status::cancelled;
          break;
        default:
          status = job_status::completed;
          break;
      }
    }
    if (status == job_status::completed && result && j->desc_.use_cache &&
        j->batch_->publish)
      j->batch_->publish(result);
    count_terminal(status);
    retire(j, status,
           status == job_status::completed ? std::move(result) : nullptr,
           threw ? error : std::string{});
  }
}

void job_scheduler::run_job(job_ptr const& j) {
  auto const popped_at = std::chrono::steady_clock::now();
  double const queue_ms =
      std::chrono::duration<double, std::milli>(popped_at - j->submitted_at_)
          .count();
  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->queue_ms_ = queue_ms;
  }
  if (stats_)
    stats_->add_queue_wait_ms(queue_ms);

  // Pre-run triage: a job whose deadline elapsed while it queued, or that
  // was cancelled while waiting, never enacts — queue wait counts against
  // the latency budget, as it must in a serving system.
  if (j->budget_.expired()) {
    count_terminal(job_status::deadline_expired);
    retire(j, job_status::deadline_expired, nullptr,
           "deadline elapsed while queued");
    return;
  }
  if (j->token_.cancelled()) {
    count_terminal(job_status::cancelled);
    retire(j, job_status::cancelled, nullptr, "cancelled while queued");
    return;
  }

  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->status_ = job_status::running;
  }
  if (stats_)
    stats_->on_enacted();

  job_context ctx(j->token_, j->budget_, &j->fired_, &j->warm_);
  std::shared_ptr<void const> result;
  std::string error;
  bool threw = false;
  auto const run_start = std::chrono::steady_clock::now();
  {
    // Job-scoped telemetry: record_trace jobs get a trace tagged with
    // their id/tag/epoch (telemetry schema v3) captured on this runner
    // thread; others pay one null-pointer test.
    std::unique_ptr<telemetry::scoped_recording> recording;
    if (j->desc_.record_trace) {
      recording = std::make_unique<telemetry::scoped_recording>(
          j->trace_, j->desc_.algorithm);
      j->trace_.job_id = j->id_;
      j->trace_.job_tag = j->desc_.algorithm +
                          (j->desc_.params.empty() ? std::string{}
                                                   : "(" + j->desc_.params + ")");
      j->trace_.graph_epoch = j->epoch_;
    }
    try {
      result = j->fn_(ctx);
    } catch (std::exception const& e) {
      threw = true;
      error = e.what();
    } catch (...) {
      threw = true;
      error = "unknown exception";
    }
    if (j->desc_.record_trace) {
      // Warm-start attribution (telemetry schema v4), stamped while the
      // recording is still scoped to this job's trace.
      j->trace_.warm_start =
          j->warm_.warm_start.load(std::memory_order_relaxed);
      j->trace_.delta_edges =
          j->warm_.delta_edges.load(std::memory_order_relaxed);
      j->trace_.supersteps_saved =
          j->warm_.supersteps_saved.load(std::memory_order_relaxed);
    }
  }
  if (stats_) {
    if (j->warm_.warm_start.load(std::memory_order_relaxed))
      stats_->on_warm_start_hit();
    if (j->warm_.delta_fallback.load(std::memory_order_relaxed))
      stats_->on_delta_fallback();
  }
  double const run_ms = std::chrono::duration<double, std::milli>(
                            std::chrono::steady_clock::now() - run_start)
                            .count();
  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->run_ms_ = run_ms;
  }
  if (stats_)
    stats_->add_run_ms(run_ms);

  job_status status;
  if (threw) {
    status = job_status::failed;
  } else {
    // Classify from the context's fired record, not from re-reading racy
    // clocks: a job that converged naturally a hair before its deadline is
    // `completed`, not `deadline_expired`.
    switch (j->fired_.load(std::memory_order_relaxed)) {
      case job_context::kFiredDeadline:
        status = job_status::deadline_expired;
        break;
      case job_context::kFiredCancelled:
        status = job_status::cancelled;
        break;
      default:
        status = job_status::completed;
        break;
    }
  }
  // Count *before* retiring: retire() wakes waiters, and a thread that
  // observed the terminal status must see the stats already reflect it
  // (engine tests read stats() right after wait() returns).
  count_terminal(status);
  retire(j, status, status == job_status::completed ? std::move(result) : nullptr,
         std::move(error));
}

void job_scheduler::retire(job_ptr const& j, job_status s,
                           std::shared_ptr<void const> result,
                           std::string error) {
  {
    std::lock_guard<std::mutex> guard(j->mutex_);
    j->status_ = s;
    j->result_ = std::move(result);
    j->error_ = std::move(error);
  }
  j->done_cv_.notify_all();
}

void job_scheduler::count_terminal(job_status s) {
  if (!stats_)
    return;
  switch (s) {
    case job_status::completed:
      stats_->on_completed();
      break;
    case job_status::failed:
      stats_->on_failed();
      break;
    case job_status::cancelled:
      stats_->on_cancelled();
      break;
    case job_status::deadline_expired:
      stats_->on_deadline_expired();
      break;
    default:
      break;
  }
}

}  // namespace essentials::engine
