#pragma once

/// \file engine/registry.hpp
/// \brief The graph registry: named, epoch-versioned, immutable graph
/// snapshots — the "many enactments over shared graphs" substrate of the
/// analytics engine.
///
/// Design: every published snapshot is a `shared_ptr<GraphT const>`.
/// Lookup *pins* the current epoch: a job holds the shared_ptr for its
/// whole enactment, so an ingest thread can publish epoch N+1 while
/// readers finish on epoch N — the new epoch becomes visible to *new*
/// lookups instantly, old epochs die when their last reader drops them.
/// This is RCU-by-shared_ptr, the standard epoch scheme of serving
/// systems, and it is exactly why `dynamic_graph_t::to_coo()` only needs
/// bucket-atomicity: consistency of the *published* graph is this layer's
/// job, immutability makes it trivial.
///
/// Epochs are per-name and strictly increasing.  Publishing fires
/// subscriber callbacks (cache invalidation, metrics) *after* the swap,
/// outside the registry lock — subscribers may call back into the
/// registry.
///
/// Delta chains (PR 4): a publish may *carry* the edge delta that led from
/// the previous epoch to the new one (produced by
/// `dynamic_graph_t::delta_since`).  The registry keeps a bounded chain of
/// per-transition deltas per name; `delta_between(name, from, to)` splices
/// and compacts them so a warm-start job holding a stale epoch's result can
/// seed an incremental enactment (algorithms/incremental.hpp).  A publish
/// without a delta (or from a different source graph) breaks the chain —
/// `delta_between` across the break reports `complete == false` and the
/// consumer falls back to a cold enactment.  Registry epochs are re-stamped
/// onto carried deltas, so the chain speaks registry epochs, not the
/// dynamic graph's internal ones.
///
/// Storage tier (PR 9): with `enable_tier`, the registry demotes *cold*
/// epochs — least-recently-looked-up first, never one a reader currently
/// pins — to the block-coded on-disk format (io/mapped.hpp) whenever the
/// total resident footprint exceeds the configured budget, and
/// transparently pages them back (rebuilding every view of GraphT from the
/// decoded CSR) on the next lookup.  Spill IO always runs *outside* the
/// registry lock: demotion keeps the epoch resident until its file is
/// durably written, promotion loads into a local and installs only if the
/// slot is still the same demoted epoch.  A spill file remains valid for
/// its epoch after promotion, so re-demoting an unchanged epoch is free.
/// Delta chains survive demotion untouched — warm starts resume after a
/// promotion.  engine_stats v5 counts demotions/promotions and gauges
/// resident/spilled bytes; demote/promote are telemetry-tagged
/// ("tier.demote"/"tier.promote").

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <filesystem>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/telemetry.hpp"
#include "core/types.hpp"
#include "engine/stats.hpp"
#include "graph/build.hpp"
#include "graph/delta.hpp"
#include "graph/dynamic.hpp"
#include "io/mapped.hpp"

namespace essentials::engine {

/// Configuration for the registry's on-disk storage tier.
struct tier_options {
  std::string spill_dir = {};  ///< directory for spill files (created on enable)
  /// Demote coldest epochs while resident snapshot bytes exceed this;
  /// 0 == unlimited (only explicit `demote` calls spill).
  std::uint64_t resident_budget_bytes = 0;
};

/// Environment-driven tier configuration (CONTRIBUTING.md knob table):
/// `ESSENTIALS_OOC=1` enables the tier, `ESSENTIALS_OOC_DIR` overrides the
/// spill directory, `ESSENTIALS_OOC_BUDGET_MB` sets the resident budget.
struct tier_env_config {
  bool enabled = false;
  tier_options options;
};
inline tier_env_config tier_config_from_env() {
  tier_env_config cfg;
  char const* const on = std::getenv("ESSENTIALS_OOC");
  cfg.enabled = on != nullptr && on[0] == '1';
  if (char const* const dir = std::getenv("ESSENTIALS_OOC_DIR"))
    cfg.options.spill_dir = dir;
  else
    cfg.options.spill_dir =
        (std::filesystem::temp_directory_path() / "essentials-ooc").string();
  if (char const* const mb = std::getenv("ESSENTIALS_OOC_BUDGET_MB"))
    cfg.options.resident_budget_bytes =
        static_cast<std::uint64_t>(std::strtoull(mb, nullptr, 10)) * 1024 *
        1024;
  return cfg;
}

/// A graph type the tier can spill: CSR-bearing (every other view is
/// rebuilt from the CSR on promotion) with column ids the block codec can
/// store.
template <typename G>
concept tier_spillable = requires(G const& g) {
  requires G::has_csr;
  g.csr();
  requires sizeof(typename G::vertex_type) <= 4;
};

/// A pinned snapshot: the graph plus the epoch it belongs to.  Holding the
/// shared_ptr keeps this epoch alive regardless of later publishes.
template <typename GraphT>
struct pinned_graph {
  std::shared_ptr<GraphT const> graph;
  std::uint64_t epoch = 0;
  explicit operator bool() const { return graph != nullptr; }
};

template <typename GraphT>
class graph_registry {
 public:
  using graph_type = GraphT;
  using delta_type = graph::edge_delta_t<typename GraphT::vertex_type,
                                         typename GraphT::weight_type>;

  /// How many epoch transitions of delta history each name retains; older
  /// transitions scroll out and warm-starts across them fall back cold.
  static constexpr std::size_t kMaxDeltaHistory = 64;

  /// Callback fired after a publish: (name, new epoch).
  using subscriber = std::function<void(std::string const&, std::uint64_t)>;

  graph_registry() = default;
  graph_registry(graph_registry const&) = delete;
  graph_registry& operator=(graph_registry const&) = delete;

  /// Publish `g` as the next epoch of `name` (epoch 1 for a new name).
  /// Returns the pinned snapshot just published.  In-flight readers of the
  /// previous epoch are unaffected — they hold their own pins.
  pinned_graph<GraphT> publish(std::string const& name, GraphT g) {
    return publish_shared(name,
                          std::make_shared<GraphT const>(std::move(g)));
  }

  /// Publish an externally built snapshot (e.g. the shared_ptr returned by
  /// `dynamic_graph_t::publish_epoch`).  The no-delta overload breaks the
  /// delta chain for `name` (the transition is unexplained).
  pinned_graph<GraphT> publish_shared(std::string const& name,
                                      std::shared_ptr<GraphT const> g) {
    return publish_impl(name, std::move(g), std::nullopt, nullptr, 0);
  }

  /// Publish a snapshot together with the edge delta explaining the
  /// transition from the previous epoch's snapshot to this one.  The delta
  /// is re-stamped with registry epochs and appended to the name's delta
  /// chain; an incomplete delta breaks the chain instead.
  pinned_graph<GraphT> publish_shared(std::string const& name,
                                      std::shared_ptr<GraphT const> g,
                                      delta_type delta) {
    return publish_impl(name, std::move(g), std::move(delta), nullptr, 0);
  }

  /// Snapshot a dynamic (ingest) graph and publish it as the next epoch —
  /// the convenience path an ingest loop calls at epoch boundaries.  This
  /// const overload cannot consult the delta log, so it breaks the chain;
  /// prefer the non-const overload for warm-start-capable serving.
  template <typename V, typename E, typename W>
  pinned_graph<GraphT> publish(std::string const& name,
                               graph::dynamic_graph_t<V, E, W> const& dyn) {
    return publish(name, dyn.template snapshot<GraphT>());
  }

  /// Warm-start-capable publish: advances the dynamic graph's own epoch
  /// (sealing its delta log), then publishes the snapshot *with* the delta
  /// for this transition.  The chain stays intact only while consecutive
  /// epochs of `name` come from the same `dyn` with a complete log —
  /// anything else (first publish, source switch, truncated log) degrades
  /// to a chain break, never to a wrong delta.
  template <typename V, typename E, typename W>
  pinned_graph<GraphT> publish(std::string const& name,
                               graph::dynamic_graph_t<V, E, W>& dyn) {
    auto [snap, dyn_epoch] = dyn.template publish_epoch<GraphT>();
    std::optional<delta_type> delta;
    if (dyn_epoch > 0) {
      auto d = dyn.delta_since(dyn_epoch - 1);
      if (d.complete)
        delta.emplace(std::move(d));
    }
    return publish_impl(name, std::move(snap), std::move(delta), &dyn,
                        dyn_epoch);
  }

  /// The spliced, compacted delta covering registry epochs
  /// (`from_epoch`, `to_epoch`] of `name`.  `complete == false` when any
  /// transition in the range is missing (chain break, history scrolled out,
  /// unknown name, or a range the registry never saw) — the caller must
  /// recompute cold.  `from_epoch == to_epoch` yields an empty complete
  /// delta.
  delta_type delta_between(std::string const& name, std::uint64_t from_epoch,
                           std::uint64_t to_epoch) const {
    delta_type out;
    out.from_epoch = from_epoch;
    out.to_epoch = to_epoch;
    out.complete = false;
    if (from_epoch > to_epoch)
      return out;
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    if (it == graphs_.end() || to_epoch > it->second.epoch)
      return out;
    if (from_epoch == to_epoch) {
      out.complete = true;
      return out;
    }
    std::uint64_t covered = 0;
    for (auto const& d : it->second.deltas) {
      if (d.to_epoch <= from_epoch || d.to_epoch > to_epoch)
        continue;
      out.records.insert(out.records.end(), d.records.begin(),
                         d.records.end());
      ++covered;
    }
    if (covered != to_epoch - from_epoch) {
      out.records.clear();  // hole in the chain: unusable
      return out;
    }
    out.complete = true;
    graph::compact(out);
    return out;
  }

  /// Pin the current epoch of `name`; empty pin when unknown.  A demoted
  /// epoch is paged back from its spill file first (the lookup blocks on
  /// the load; concurrent lookups may load redundantly, the first install
  /// wins) — callers never observe the tier except through latency.
  pinned_graph<GraphT> lookup(std::string const& name) const {
    std::uint64_t demoted_epoch = 0;
    std::string spill_path;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto const it = graphs_.find(name);
      if (it == graphs_.end())
        return {};
      it->second.last_access = ++access_clock_;
      if (it->second.graph != nullptr)
        return {it->second.graph, it->second.epoch};
      if (it->second.spill_path.empty())
        return {};  // never happens for published names; defensive
      demoted_epoch = it->second.epoch;
      spill_path = it->second.spill_path;
    }
    if constexpr (tier_spillable<GraphT>)
      return promote(name, demoted_epoch, spill_path);
    else
      return {};
  }

  /// Current epoch of `name` (0 == never published).
  std::uint64_t epoch(std::string const& name) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    return it == graphs_.end() ? 0 : it->second.epoch;
  }

  /// Remove a graph (its epochs survive in readers' pins).  Returns
  /// whether the name existed.  Any spill file is deleted.
  bool remove(std::string const& name) {
    std::string stale;
    bool erased = false;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto const it = graphs_.find(name);
      if (it != graphs_.end()) {
        release_accounting_locked(it->second);
        stale = std::move(it->second.spill_path);
        graphs_.erase(it);
        erased = true;
        push_gauges_locked();
      }
    }
    remove_spill_file(stale);
    return erased;
  }

  // --- storage tier ----------------------------------------------------------

  /// Attach the engine's stats block (tier counters/gauges).  Call before
  /// concurrent use.
  void set_stats(engine_stats* stats) { stats_ = stats; }

  /// Enable the on-disk tier: spill files live under `opt.spill_dir`
  /// (created here), and publishes/demotions keep total resident snapshot
  /// bytes at or under `opt.resident_budget_bytes` whenever unpinned cold
  /// epochs make that possible.  Compile-time no-op for graph types the
  /// tier cannot serialize (no CSR view).
  void enable_tier(tier_options opt) {
    static_assert(tier_spillable<GraphT>,
                  "graph_registry tier requires a CSR-bearing graph type");
    std::filesystem::create_directories(opt.spill_dir);
    std::lock_guard<std::mutex> guard(mutex_);
    tier_ = std::move(opt);
    tier_enabled_ = true;
  }

  bool tier_enabled() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return tier_enabled_;
  }

  /// Total bytes of resident (in-RAM) snapshots the registry itself holds.
  std::uint64_t resident_bytes() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return resident_total_;
  }
  /// Total bytes of spill files currently on disk.
  std::uint64_t spilled_bytes() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return spilled_total_;
  }

  /// Force-demote the current epoch of `name` to disk.  Returns true when
  /// the epoch is on disk afterwards (including "already demoted"); false
  /// for unknown names, pinned epochs, or a disabled tier.
  bool demote(std::string const& name) {
    if constexpr (tier_spillable<GraphT>)
      return demote_impl(name);
    else
      return false;
  }

  /// Register a publish callback (the engine wires cache invalidation
  /// here).  Callbacks run on the publishing thread, after the swap,
  /// outside the registry lock.
  void subscribe(subscriber s) {
    std::lock_guard<std::mutex> guard(mutex_);
    subscribers_.push_back(std::move(s));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return graphs_.size();
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::string> out;
    out.reserve(graphs_.size());
    for (auto const& [name, slot] : graphs_)
      out.push_back(name);
    return out;
  }

 private:
  struct slot_t {
    std::shared_ptr<GraphT const> graph;  ///< null while demoted to disk
    std::uint64_t epoch = 0;
    /// Per-transition deltas, oldest first; deltas[i] covers registry
    /// epochs (to_epoch - 1, to_epoch].  Contiguity is an invariant: a
    /// chain break clears the deque.  Demotion leaves the chain in place —
    /// warm starts resume once the epoch is promoted back.
    std::deque<delta_type> deltas;
    /// Continuity tracking: which dynamic graph produced the current epoch
    /// (identity only — never dereferenced) and at which of *its* epochs.
    void const* delta_source = nullptr;
    std::uint64_t source_epoch = 0;
    // Storage-tier bookkeeping.
    std::uint64_t resident_bytes = 0;  ///< footprint charged while resident
    std::uint64_t last_access = 0;     ///< LRU stamp (access_clock_ ticks)
    std::string spill_path;            ///< on-disk copy of `spill_epoch`
    std::uint64_t spill_epoch = 0;     ///< epoch the spill file serializes
    std::uint64_t spill_bytes = 0;     ///< spill file size
    bool spilling = false;             ///< a demotion write is in flight
  };

  pinned_graph<GraphT> publish_impl(std::string const& name,
                                    std::shared_ptr<GraphT const> g,
                                    std::optional<delta_type> delta,
                                    void const* source,
                                    std::uint64_t source_epoch) {
    expects(g != nullptr, "graph_registry: cannot publish a null graph");
    pinned_graph<GraphT> pinned;
    std::vector<subscriber> subs;
    std::string stale_spill;
    bool over_budget = false;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto& slot = graphs_[name];
      bool const continuous =
          delta.has_value() && delta->complete && slot.epoch > 0 &&
          slot.delta_source == source && source != nullptr &&
          source_epoch == slot.source_epoch + 1;
      release_accounting_locked(slot);
      stale_spill = std::move(slot.spill_path);  // old epoch's file is stale
      slot.spill_path.clear();
      slot.spill_epoch = 0;
      slot.spill_bytes = 0;
      slot.graph = std::move(g);
      slot.epoch += 1;
      slot.resident_bytes = estimate_bytes(*slot.graph);
      slot.last_access = ++access_clock_;
      resident_total_ += slot.resident_bytes;
      if (continuous) {
        delta->from_epoch = slot.epoch - 1;  // re-stamp in registry epochs
        delta->to_epoch = slot.epoch;
        slot.deltas.push_back(std::move(*delta));
        while (slot.deltas.size() > kMaxDeltaHistory)
          slot.deltas.pop_front();
      } else {
        slot.deltas.clear();  // unexplained transition: chain break
      }
      slot.delta_source = source;
      slot.source_epoch = source_epoch;
      pinned = {slot.graph, slot.epoch};
      subs = subscribers_;  // snapshot: callbacks run outside the lock
      push_gauges_locked();
      over_budget = tier_enabled_ && tier_.resident_budget_bytes > 0 &&
                    resident_total_ > tier_.resident_budget_bytes;
    }
    remove_spill_file(stale_spill);
    if (over_budget)
      enforce_budget();
    for (auto const& s : subs)
      s(name, pinned.epoch);
    return pinned;
  }

  // --- tier internals --------------------------------------------------------
  //
  // Locking discipline: every file read/write happens with the registry
  // lock RELEASED; the lock is retaken afterwards and the slot's epoch is
  // re-checked before any state is installed.  A republish racing a
  // demotion/promotion simply invalidates the in-flight IO (the loser
  // deletes/discards its work).

  /// Registry's own footprint estimate of a snapshot: the raw bytes of
  /// every view GraphT carries.
  static std::uint64_t estimate_bytes(GraphT const& g) {
    std::uint64_t b = 0;
    using V = typename GraphT::vertex_type;
    using E = typename GraphT::edge_type;
    using W = typename GraphT::weight_type;
    if constexpr (GraphT::has_csr) {
      auto const& c = g.csr();
      b += c.row_offsets.size() * sizeof(E) +
           c.column_indices.size() * (sizeof(V) + sizeof(W));
    }
    if constexpr (GraphT::has_csc) {
      auto const& c = g.csc();
      b += c.column_offsets.size() * sizeof(E) +
           c.row_indices.size() * (sizeof(V) + sizeof(W));
    }
    if constexpr (GraphT::has_coo) {
      auto const& c = g.coo();
      b += c.row_indices.size() * (2 * sizeof(V) + sizeof(W));
    }
    return b;
  }

  /// Drop a slot's contribution from both accounting totals (caller holds
  /// the lock and is about to overwrite/erase the slot).
  void release_accounting_locked(slot_t& slot) {
    if (slot.graph != nullptr)
      resident_total_ -= slot.resident_bytes;
    if (!slot.spill_path.empty())
      spilled_total_ -= slot.spill_bytes;
  }

  void push_gauges_locked() const {
    if (stats_ != nullptr) {
      stats_->set_tier_resident_bytes(resident_total_);
      stats_->set_tier_spilled_bytes(spilled_total_);
    }
  }

  static void remove_spill_file(std::string const& path) {
    if (!path.empty()) {
      std::error_code ec;
      std::filesystem::remove(path, ec);  // best-effort
    }
  }

  std::string spill_path_for(std::string const& name,
                             std::uint64_t epoch) const {
    // Lock held.  Name goes through a hash: spill files must not depend on
    // names being filesystem-safe.
    auto const h = std::hash<std::string>{}(name);
    char buf[64];
    std::snprintf(buf, sizeof buf, "g%016zx-i%llu-e%llu.blk",
                  static_cast<std::size_t>(h),
                  static_cast<unsigned long long>(instance_),
                  static_cast<unsigned long long>(epoch));
    return (std::filesystem::path(tier_.spill_dir) / buf).string();
  }

  /// Rebuild a full GraphT from a decoded CSR: CSC by transposition, COO
  /// by expanding row offsets (canonical order is preserved, so all views
  /// agree exactly as they did at publish time).
  static GraphT rehydrate(
      graph::csr_t<typename GraphT::vertex_type, typename GraphT::edge_type,
                   typename GraphT::weight_type>
          csr) {
    using V = typename GraphT::vertex_type;
    using E = typename GraphT::edge_type;
    using W = typename GraphT::weight_type;
    GraphT g;
    if constexpr (GraphT::has_csc)
      g.set_csc(graph::transpose_to_csc(csr));
    if constexpr (GraphT::has_coo) {
      graph::coo_t<V, E, W> coo;
      coo.num_rows = csr.num_rows;
      coo.num_cols = csr.num_cols;
      std::size_t const m = csr.column_indices.size();
      coo.row_indices.resize(m);
      coo.column_indices.assign(csr.column_indices.begin(),
                                csr.column_indices.end());
      coo.values.assign(csr.values.begin(), csr.values.end());
      for (V v = 0; v < csr.num_rows; ++v)
        for (std::size_t e = static_cast<std::size_t>(
                 csr.row_offsets[static_cast<std::size_t>(v)]);
             e < static_cast<std::size_t>(
                     csr.row_offsets[static_cast<std::size_t>(v) + 1]);
             ++e)
          coo.row_indices[e] = v;
      g.set_coo(std::move(coo));
    }
    g.set_csr(std::move(csr));
    return g;
  }

  /// Page a demoted epoch back in.  Loads outside the lock; installs only
  /// if the slot still holds the same demoted epoch.
  pinned_graph<GraphT> promote(std::string const& name, std::uint64_t epoch,
                               std::string const& path) const
    requires tier_spillable<GraphT>
  {
    using V = typename GraphT::vertex_type;
    using E = typename GraphT::edge_type;
    using W = typename GraphT::weight_type;
    std::shared_ptr<GraphT const> loaded;
    {
      io::mapped_graph<V, E, W> mg(path);
      telemetry::op_probe probe("tier.promote", mg.file_bytes(), 0, 0, 0,
                                false);
      loaded = std::make_shared<GraphT const>(rehydrate(mg.to_csr()));
    }
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    if (it == graphs_.end())
      return {};  // removed while loading
    slot_t& slot = it->second;
    if (slot.graph != nullptr || slot.epoch != epoch)
      return {slot.graph, slot.epoch};  // republished or promoted by a peer
    slot.graph = loaded;
    slot.resident_bytes = estimate_bytes(*loaded);
    slot.last_access = ++access_clock_;
    resident_total_ += slot.resident_bytes;
    // The spill file stays valid for this epoch: a later re-demotion of an
    // unchanged epoch drops the pointer without rewriting the file.
    if (stats_ != nullptr)
      stats_->on_tier_promotion();
    push_gauges_locked();
    return {slot.graph, slot.epoch};
  }

  bool demote_impl(std::string const& name)
    requires tier_spillable<GraphT>
  {
    std::shared_ptr<GraphT const> pin;
    std::uint64_t epoch = 0;
    std::string path;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      if (!tier_enabled_)
        return false;
      auto const it = graphs_.find(name);
      if (it == graphs_.end())
        return false;
      slot_t& slot = it->second;
      if (slot.graph == nullptr)
        return !slot.spill_path.empty();  // already on disk
      if (slot.spilling)
        return false;  // another demotion owns this slot's IO
      if (!slot.spill_path.empty() && slot.spill_epoch == slot.epoch) {
        // Fast path: the epoch is already durably on disk from a previous
        // demote/promote cycle — just drop the resident copy.
        if (slot.graph.use_count() > 1)
          return false;  // pinned by a reader: not cold, keep it
        resident_total_ -= slot.resident_bytes;
        slot.graph.reset();
        if (stats_ != nullptr)
          stats_->on_tier_demotion();
        push_gauges_locked();
        return true;
      }
      if (slot.graph.use_count() > 1)
        return false;  // pinned by a reader: not cold, keep it
      pin = slot.graph;  // keep the epoch alive (and resident) during IO
      epoch = slot.epoch;
      path = spill_path_for(name, epoch);
      slot.spilling = true;
    }
    bool wrote = false;
    std::uint64_t file_bytes = 0;
    try {
      telemetry::op_probe probe("tier.demote", pin->csr().column_indices.size(),
                                0, 0, 0, false);
      io::write_mapped_graph(path, pin->csr());
      std::error_code ec;
      auto const sz = std::filesystem::file_size(path, ec);
      file_bytes = ec ? 0 : static_cast<std::uint64_t>(sz);
      wrote = true;
    } catch (...) {
      remove_spill_file(path);
    }
    bool demoted = false;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto const it = graphs_.find(name);
      if (it != graphs_.end()) {
        slot_t& slot = it->second;
        slot.spilling = false;
        if (wrote && slot.epoch == epoch && slot.graph == pin) {
          slot.spill_path = path;
          slot.spill_epoch = epoch;
          slot.spill_bytes = file_bytes;
          spilled_total_ += file_bytes;
          // Drop the resident copy only if still unpinned (the registry's
          // reference + our local `pin` = 2).
          if (slot.graph.use_count() <= 2) {
            resident_total_ -= slot.resident_bytes;
            slot.graph.reset();
            demoted = true;
            if (stats_ != nullptr)
              stats_->on_tier_demotion();
          }
          push_gauges_locked();
          wrote = false;  // file adopted by the slot
        }
      } else if (wrote) {
        wrote = true;  // name vanished: file is orphaned, delete below
      }
    }
    if (wrote)
      remove_spill_file(path);
    return demoted;
  }

  /// Demote least-recently-used unpinned epochs until resident bytes fit
  /// the budget (or nothing cold remains).
  void enforce_budget() {
    if constexpr (tier_spillable<GraphT>) {
      for (;;) {
        std::string victim;
        {
          std::lock_guard<std::mutex> guard(mutex_);
          if (!tier_enabled_ || tier_.resident_budget_bytes == 0 ||
              resident_total_ <= tier_.resident_budget_bytes)
            return;
          std::uint64_t best = ~0ull;
          for (auto& [n, slot] : graphs_) {
            if (slot.graph == nullptr || slot.spilling ||
                slot.graph.use_count() > 1)
              continue;  // demoted already, in flight, or pinned
            if (slot.last_access < best) {
              best = slot.last_access;
              victim = n;
            }
          }
          if (victim.empty())
            return;  // everything resident is pinned/hot: budget is advisory
        }
        if (!demote_impl(victim))
          return;  // raced a reader pin: stop rather than spin
      }
    }
  }

  mutable std::mutex mutex_;
  mutable std::unordered_map<std::string, slot_t> graphs_;
  std::vector<subscriber> subscribers_;
  // Tier state.  graphs_/totals are mutated under mutex_ from const
  // lookups (LRU stamps, promotion installs) — logically const: the
  // name -> current-epoch mapping callers observe never changes.
  engine_stats* stats_ = nullptr;
  tier_options tier_;
  bool tier_enabled_ = false;
  std::uint64_t const instance_ = graph::blockcodec::next_cookie();
  mutable std::uint64_t access_clock_ = 0;
  mutable std::uint64_t resident_total_ = 0;
  mutable std::uint64_t spilled_total_ = 0;
};

}  // namespace essentials::engine
