#pragma once

/// \file engine/registry.hpp
/// \brief The graph registry: named, epoch-versioned, immutable graph
/// snapshots — the "many enactments over shared graphs" substrate of the
/// analytics engine.
///
/// Design: every published snapshot is a `shared_ptr<GraphT const>`.
/// Lookup *pins* the current epoch: a job holds the shared_ptr for its
/// whole enactment, so an ingest thread can publish epoch N+1 while
/// readers finish on epoch N — the new epoch becomes visible to *new*
/// lookups instantly, old epochs die when their last reader drops them.
/// This is RCU-by-shared_ptr, the standard epoch scheme of serving
/// systems, and it is exactly why `dynamic_graph_t::to_coo()` only needs
/// bucket-atomicity: consistency of the *published* graph is this layer's
/// job, immutability makes it trivial.
///
/// Epochs are per-name and strictly increasing.  Publishing fires
/// subscriber callbacks (cache invalidation, metrics) *after* the swap,
/// outside the registry lock — subscribers may call back into the
/// registry.
///
/// Delta chains (PR 4): a publish may *carry* the edge delta that led from
/// the previous epoch to the new one (produced by
/// `dynamic_graph_t::delta_since`).  The registry keeps a bounded chain of
/// per-transition deltas per name; `delta_between(name, from, to)` splices
/// and compacts them so a warm-start job holding a stale epoch's result can
/// seed an incremental enactment (algorithms/incremental.hpp).  A publish
/// without a delta (or from a different source graph) breaks the chain —
/// `delta_between` across the break reports `complete == false` and the
/// consumer falls back to a cold enactment.  Registry epochs are re-stamped
/// onto carried deltas, so the chain speaks registry epochs, not the
/// dynamic graph's internal ones.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/delta.hpp"
#include "graph/dynamic.hpp"

namespace essentials::engine {

/// A pinned snapshot: the graph plus the epoch it belongs to.  Holding the
/// shared_ptr keeps this epoch alive regardless of later publishes.
template <typename GraphT>
struct pinned_graph {
  std::shared_ptr<GraphT const> graph;
  std::uint64_t epoch = 0;
  explicit operator bool() const { return graph != nullptr; }
};

template <typename GraphT>
class graph_registry {
 public:
  using graph_type = GraphT;
  using delta_type = graph::edge_delta_t<typename GraphT::vertex_type,
                                         typename GraphT::weight_type>;

  /// How many epoch transitions of delta history each name retains; older
  /// transitions scroll out and warm-starts across them fall back cold.
  static constexpr std::size_t kMaxDeltaHistory = 64;

  /// Callback fired after a publish: (name, new epoch).
  using subscriber = std::function<void(std::string const&, std::uint64_t)>;

  graph_registry() = default;
  graph_registry(graph_registry const&) = delete;
  graph_registry& operator=(graph_registry const&) = delete;

  /// Publish `g` as the next epoch of `name` (epoch 1 for a new name).
  /// Returns the pinned snapshot just published.  In-flight readers of the
  /// previous epoch are unaffected — they hold their own pins.
  pinned_graph<GraphT> publish(std::string const& name, GraphT g) {
    return publish_shared(name,
                          std::make_shared<GraphT const>(std::move(g)));
  }

  /// Publish an externally built snapshot (e.g. the shared_ptr returned by
  /// `dynamic_graph_t::publish_epoch`).  The no-delta overload breaks the
  /// delta chain for `name` (the transition is unexplained).
  pinned_graph<GraphT> publish_shared(std::string const& name,
                                      std::shared_ptr<GraphT const> g) {
    return publish_impl(name, std::move(g), std::nullopt, nullptr, 0);
  }

  /// Publish a snapshot together with the edge delta explaining the
  /// transition from the previous epoch's snapshot to this one.  The delta
  /// is re-stamped with registry epochs and appended to the name's delta
  /// chain; an incomplete delta breaks the chain instead.
  pinned_graph<GraphT> publish_shared(std::string const& name,
                                      std::shared_ptr<GraphT const> g,
                                      delta_type delta) {
    return publish_impl(name, std::move(g), std::move(delta), nullptr, 0);
  }

  /// Snapshot a dynamic (ingest) graph and publish it as the next epoch —
  /// the convenience path an ingest loop calls at epoch boundaries.  This
  /// const overload cannot consult the delta log, so it breaks the chain;
  /// prefer the non-const overload for warm-start-capable serving.
  template <typename V, typename E, typename W>
  pinned_graph<GraphT> publish(std::string const& name,
                               graph::dynamic_graph_t<V, E, W> const& dyn) {
    return publish(name, dyn.template snapshot<GraphT>());
  }

  /// Warm-start-capable publish: advances the dynamic graph's own epoch
  /// (sealing its delta log), then publishes the snapshot *with* the delta
  /// for this transition.  The chain stays intact only while consecutive
  /// epochs of `name` come from the same `dyn` with a complete log —
  /// anything else (first publish, source switch, truncated log) degrades
  /// to a chain break, never to a wrong delta.
  template <typename V, typename E, typename W>
  pinned_graph<GraphT> publish(std::string const& name,
                               graph::dynamic_graph_t<V, E, W>& dyn) {
    auto [snap, dyn_epoch] = dyn.template publish_epoch<GraphT>();
    std::optional<delta_type> delta;
    if (dyn_epoch > 0) {
      auto d = dyn.delta_since(dyn_epoch - 1);
      if (d.complete)
        delta.emplace(std::move(d));
    }
    return publish_impl(name, std::move(snap), std::move(delta), &dyn,
                        dyn_epoch);
  }

  /// The spliced, compacted delta covering registry epochs
  /// (`from_epoch`, `to_epoch`] of `name`.  `complete == false` when any
  /// transition in the range is missing (chain break, history scrolled out,
  /// unknown name, or a range the registry never saw) — the caller must
  /// recompute cold.  `from_epoch == to_epoch` yields an empty complete
  /// delta.
  delta_type delta_between(std::string const& name, std::uint64_t from_epoch,
                           std::uint64_t to_epoch) const {
    delta_type out;
    out.from_epoch = from_epoch;
    out.to_epoch = to_epoch;
    out.complete = false;
    if (from_epoch > to_epoch)
      return out;
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    if (it == graphs_.end() || to_epoch > it->second.epoch)
      return out;
    if (from_epoch == to_epoch) {
      out.complete = true;
      return out;
    }
    std::uint64_t covered = 0;
    for (auto const& d : it->second.deltas) {
      if (d.to_epoch <= from_epoch || d.to_epoch > to_epoch)
        continue;
      out.records.insert(out.records.end(), d.records.begin(),
                         d.records.end());
      ++covered;
    }
    if (covered != to_epoch - from_epoch) {
      out.records.clear();  // hole in the chain: unusable
      return out;
    }
    out.complete = true;
    graph::compact(out);
    return out;
  }

  /// Pin the current epoch of `name`; empty pin when unknown.
  pinned_graph<GraphT> lookup(std::string const& name) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    if (it == graphs_.end())
      return {};
    return {it->second.graph, it->second.epoch};
  }

  /// Current epoch of `name` (0 == never published).
  std::uint64_t epoch(std::string const& name) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    return it == graphs_.end() ? 0 : it->second.epoch;
  }

  /// Remove a graph (its epochs survive in readers' pins).  Returns
  /// whether the name existed.
  bool remove(std::string const& name) {
    std::lock_guard<std::mutex> guard(mutex_);
    return graphs_.erase(name) != 0;
  }

  /// Register a publish callback (the engine wires cache invalidation
  /// here).  Callbacks run on the publishing thread, after the swap,
  /// outside the registry lock.
  void subscribe(subscriber s) {
    std::lock_guard<std::mutex> guard(mutex_);
    subscribers_.push_back(std::move(s));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return graphs_.size();
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::string> out;
    out.reserve(graphs_.size());
    for (auto const& [name, slot] : graphs_)
      out.push_back(name);
    return out;
  }

 private:
  struct slot_t {
    std::shared_ptr<GraphT const> graph;
    std::uint64_t epoch = 0;
    /// Per-transition deltas, oldest first; deltas[i] covers registry
    /// epochs (to_epoch - 1, to_epoch].  Contiguity is an invariant: a
    /// chain break clears the deque.
    std::deque<delta_type> deltas;
    /// Continuity tracking: which dynamic graph produced the current epoch
    /// (identity only — never dereferenced) and at which of *its* epochs.
    void const* delta_source = nullptr;
    std::uint64_t source_epoch = 0;
  };

  pinned_graph<GraphT> publish_impl(std::string const& name,
                                    std::shared_ptr<GraphT const> g,
                                    std::optional<delta_type> delta,
                                    void const* source,
                                    std::uint64_t source_epoch) {
    expects(g != nullptr, "graph_registry: cannot publish a null graph");
    pinned_graph<GraphT> pinned;
    std::vector<subscriber> subs;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto& slot = graphs_[name];
      bool const continuous =
          delta.has_value() && delta->complete && slot.epoch > 0 &&
          slot.delta_source == source && source != nullptr &&
          source_epoch == slot.source_epoch + 1;
      slot.graph = std::move(g);
      slot.epoch += 1;
      if (continuous) {
        delta->from_epoch = slot.epoch - 1;  // re-stamp in registry epochs
        delta->to_epoch = slot.epoch;
        slot.deltas.push_back(std::move(*delta));
        while (slot.deltas.size() > kMaxDeltaHistory)
          slot.deltas.pop_front();
      } else {
        slot.deltas.clear();  // unexplained transition: chain break
      }
      slot.delta_source = source;
      slot.source_epoch = source_epoch;
      pinned = {slot.graph, slot.epoch};
      subs = subscribers_;  // snapshot: callbacks run outside the lock
    }
    for (auto const& s : subs)
      s(name, pinned.epoch);
    return pinned;
  }

  mutable std::mutex mutex_;
  std::unordered_map<std::string, slot_t> graphs_;
  std::vector<subscriber> subscribers_;
};

}  // namespace essentials::engine
