#pragma once

/// \file engine/registry.hpp
/// \brief The graph registry: named, epoch-versioned, immutable graph
/// snapshots — the "many enactments over shared graphs" substrate of the
/// analytics engine.
///
/// Design: every published snapshot is a `shared_ptr<GraphT const>`.
/// Lookup *pins* the current epoch: a job holds the shared_ptr for its
/// whole enactment, so an ingest thread can publish epoch N+1 while
/// readers finish on epoch N — the new epoch becomes visible to *new*
/// lookups instantly, old epochs die when their last reader drops them.
/// This is RCU-by-shared_ptr, the standard epoch scheme of serving
/// systems, and it is exactly why `dynamic_graph_t::to_coo()` only needs
/// bucket-atomicity: consistency of the *published* graph is this layer's
/// job, immutability makes it trivial.
///
/// Epochs are per-name and strictly increasing.  Publishing fires
/// subscriber callbacks (cache invalidation, metrics) *after* the swap,
/// outside the registry lock — subscribers may call back into the
/// registry.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "graph/dynamic.hpp"

namespace essentials::engine {

/// A pinned snapshot: the graph plus the epoch it belongs to.  Holding the
/// shared_ptr keeps this epoch alive regardless of later publishes.
template <typename GraphT>
struct pinned_graph {
  std::shared_ptr<GraphT const> graph;
  std::uint64_t epoch = 0;
  explicit operator bool() const { return graph != nullptr; }
};

template <typename GraphT>
class graph_registry {
 public:
  using graph_type = GraphT;

  /// Callback fired after a publish: (name, new epoch).
  using subscriber = std::function<void(std::string const&, std::uint64_t)>;

  graph_registry() = default;
  graph_registry(graph_registry const&) = delete;
  graph_registry& operator=(graph_registry const&) = delete;

  /// Publish `g` as the next epoch of `name` (epoch 1 for a new name).
  /// Returns the pinned snapshot just published.  In-flight readers of the
  /// previous epoch are unaffected — they hold their own pins.
  pinned_graph<GraphT> publish(std::string const& name, GraphT g) {
    return publish_shared(name,
                          std::make_shared<GraphT const>(std::move(g)));
  }

  /// Publish an externally built snapshot (e.g. the shared_ptr returned by
  /// `dynamic_graph_t::publish_epoch`).
  pinned_graph<GraphT> publish_shared(std::string const& name,
                                      std::shared_ptr<GraphT const> g) {
    expects(g != nullptr, "graph_registry: cannot publish a null graph");
    pinned_graph<GraphT> pinned;
    std::vector<subscriber> subs;
    {
      std::lock_guard<std::mutex> guard(mutex_);
      auto& slot = graphs_[name];
      slot.graph = std::move(g);
      slot.epoch += 1;
      pinned = {slot.graph, slot.epoch};
      subs = subscribers_;  // snapshot: callbacks run outside the lock
    }
    for (auto const& s : subs)
      s(name, pinned.epoch);
    return pinned;
  }

  /// Snapshot a dynamic (ingest) graph and publish it as the next epoch —
  /// the convenience path an ingest loop calls at epoch boundaries.
  template <typename V, typename E, typename W>
  pinned_graph<GraphT> publish(std::string const& name,
                               graph::dynamic_graph_t<V, E, W> const& dyn) {
    return publish(name, dyn.template snapshot<GraphT>());
  }

  /// Pin the current epoch of `name`; empty pin when unknown.
  pinned_graph<GraphT> lookup(std::string const& name) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    if (it == graphs_.end())
      return {};
    return {it->second.graph, it->second.epoch};
  }

  /// Current epoch of `name` (0 == never published).
  std::uint64_t epoch(std::string const& name) const {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = graphs_.find(name);
    return it == graphs_.end() ? 0 : it->second.epoch;
  }

  /// Remove a graph (its epochs survive in readers' pins).  Returns
  /// whether the name existed.
  bool remove(std::string const& name) {
    std::lock_guard<std::mutex> guard(mutex_);
    return graphs_.erase(name) != 0;
  }

  /// Register a publish callback (the engine wires cache invalidation
  /// here).  Callbacks run on the publishing thread, after the swap,
  /// outside the registry lock.
  void subscribe(subscriber s) {
    std::lock_guard<std::mutex> guard(mutex_);
    subscribers_.push_back(std::move(s));
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return graphs_.size();
  }

  std::vector<std::string> names() const {
    std::lock_guard<std::mutex> guard(mutex_);
    std::vector<std::string> out;
    out.reserve(graphs_.size());
    for (auto const& [name, slot] : graphs_)
      out.push_back(name);
    return out;
  }

 private:
  struct slot_t {
    std::shared_ptr<GraphT const> graph;
    std::uint64_t epoch = 0;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, slot_t> graphs_;
  std::vector<subscriber> subscribers_;
};

}  // namespace essentials::engine
