#pragma once

/// \file engine/scheduler.hpp
/// \brief The concurrent job scheduler of the analytics engine: a
/// priority job queue with per-job deadlines, cooperative cancellation and
/// admission control, executed by a crew of dedicated runner threads.
///
/// Layering (and why runners are dedicated threads, not pool tasks): a job
/// body runs parallel *operators* whose `run_blocked` chunks execute on the
/// shared thread pool.  If the job bodies themselves also occupied pool
/// workers, J concurrent jobs could park every worker inside a latch wait
/// while their operator chunks sit unpopped behind them — classic nested-
/// fork-join starvation deadlock.  So the scheduler follows the
/// `async_loop` precedent (core/enactor.hpp): job bodies run on dedicated
/// runner threads that *block freely*, and only the data-parallel chunks
/// they spawn go to the pool.  Concurrency across jobs = number of
/// runners; parallelism within a job = the pool, shared by all.
///
/// Deadlines and cancellation are *cooperative*, threaded into the paper's
/// fourth essential (the convergence condition): the runner hands the job
/// a `job_context` whose `stop_condition()` composes into `bsp_loop` via
/// `any_of` (or drives the stoppable `async_loop` overload).  A job past
/// its deadline therefore stops at the next superstep boundary — no thread
/// is ever killed, no state is torn.  The context records *which* guard
/// fired, so the scheduler classifies the outcome (`deadline_expired` vs
/// `cancelled` vs `completed`) without re-deriving it from racy clocks.
///
/// Admission control: the queue is bounded (`max_queued`); a submission
/// past the bound is rejected immediately with a reason — backpressure by
/// refusal, the serving-system alternative to unbounded queueing collapse.

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/enactor.hpp"
#include "core/telemetry.hpp"
#include "engine/stats.hpp"

namespace essentials::engine {

struct batch_spec;  // engine/batcher.hpp — fusion contract for batchable jobs

// ---------------------------------------------------------------------------
// Job description and lifecycle
// ---------------------------------------------------------------------------

enum class job_status : unsigned char {
  queued,            ///< accepted, waiting for a runner
  running,           ///< a runner is enacting it
  completed,         ///< ran to convergence; result available
  cache_hit,         ///< served from the result cache without enacting
  failed,            ///< the enactment threw; see error()
  cancelled,         ///< stopped by cancel_token (queued or mid-enactment)
  deadline_expired,  ///< stopped by its deadline (queued or mid-enactment)
  rejected,          ///< refused at admission; see error()
};

inline char const* to_string(job_status s) {
  switch (s) {
    case job_status::queued:
      return "queued";
    case job_status::running:
      return "running";
    case job_status::completed:
      return "completed";
    case job_status::cache_hit:
      return "cache_hit";
    case job_status::failed:
      return "failed";
    case job_status::cancelled:
      return "cancelled";
    case job_status::deadline_expired:
      return "deadline_expired";
    case job_status::rejected:
      return "rejected";
  }
  return "unknown";
}

/// True for states a job can never leave.
inline bool is_terminal(job_status s) {
  return s != job_status::queued && s != job_status::running;
}

/// What the client asks for.  `graph`/`algorithm`/`params` identify the
/// query (and form the cache key — params must be *canonicalized* by the
/// caller: same query ⇒ same string); `priority` orders the queue (higher
/// first, FIFO within a class); `deadline` is a relative latency budget
/// measured from submission (zero == unlimited) that covers queue wait AND
/// run time, as a serving deadline must.
struct job_desc {
  std::string graph;
  std::string algorithm;
  std::string params;
  int priority = 0;
  std::chrono::milliseconds deadline{0};
  bool use_cache = true;
  bool record_trace = false;  ///< capture a job-tagged telemetry trace
};

/// Warm-start attribution a job body reports back through its context
/// (written by the body on a runner thread, read by the scheduler after the
/// body returned, and by handle accessors from any thread — hence atomics).
struct warm_info {
  std::atomic<bool> warm_start{false};      ///< enacted incrementally
  std::atomic<bool> delta_fallback{false};  ///< warm candidate, forced cold
  std::atomic<std::uint64_t> delta_edges{0};
  std::atomic<std::uint64_t> supersteps_saved{0};
};

/// Handed to the job body while it runs: the cooperative stop machinery.
/// References into the job's shared state — valid only for the duration of
/// the body call.
class job_context {
 public:
  job_context(enactor::cancel_token token, enactor::time_budget budget,
              std::atomic<int>* fired, warm_info* warm = nullptr)
      : token_(std::move(token)), budget_(budget), fired_(fired),
        warm_(warm) {}

  enactor::cancel_token const& token() const { return token_; }
  enactor::time_budget const& budget() const { return budget_; }

  /// One combined check; records which guard fired (deadline wins ties) so
  /// the scheduler can classify the outcome race-free after the body
  /// returns.  Call between natural units of work (supersteps, items).
  bool should_stop() const {
    if (budget_.expired()) {
      fired_->store(kFiredDeadline, std::memory_order_relaxed);
      return true;
    }
    if (token_.cancelled()) {
      fired_->store(kFiredCancelled, std::memory_order_relaxed);
      return true;
    }
    return false;
  }

  /// Composable convergence condition for `bsp_loop`:
  ///   bsp_loop(f, step, any_of{frontier_empty{}, ctx.stop_condition()});
  struct stop_condition_t {
    job_context const* ctx;
    template <typename F>
    bool operator()(F const& /*f*/, std::size_t /*iteration*/) const {
      return ctx->should_stop();
    }
    bool operator()() const { return ctx->should_stop(); }  // async_loop form
  };
  stop_condition_t stop_condition() const { return {this}; }

  static constexpr int kFiredNone = 0;
  static constexpr int kFiredCancelled = 1;
  static constexpr int kFiredDeadline = 2;

  /// Which guard (if any) has fired so far — a *read* of the record, unlike
  /// should_stop() which re-evaluates the guards and records the outcome.
  /// Use this after the enactment to ask "was this run truncated?" without
  /// racing the clock (a job that converged naturally a moment before its
  /// deadline must stay classified as completed).
  int fired() const { return fired_->load(std::memory_order_relaxed); }

  /// Record that this enactment was warm-started from a prior epoch's
  /// converged result (telemetry schema v4 + engine_stats.warm_start_hits).
  /// Call after the incremental enactor reports `warm_started == true`.
  void note_warm_start(std::uint64_t delta_edges,
                       std::uint64_t supersteps_saved) const {
    if (!warm_)
      return;
    warm_->warm_start.store(true, std::memory_order_relaxed);
    warm_->delta_edges.store(delta_edges, std::memory_order_relaxed);
    warm_->supersteps_saved.store(supersteps_saved,
                                  std::memory_order_relaxed);
  }

  /// Record that a warm candidate existed but the enactment had to run cold
  /// (deletions in the delta, truncated log, shape mismatch...).
  void note_delta_fallback() const {
    if (warm_)
      warm_->delta_fallback.store(true, std::memory_order_relaxed);
  }

 private:
  enactor::cancel_token token_;
  enactor::time_budget budget_;
  std::atomic<int>* fired_;
  warm_info* warm_;
};

/// The work itself: runs against whatever state the submitter bound (the
/// engine facade binds a pinned graph snapshot) and returns a type-erased
/// result (null allowed for side-effect jobs; null results are not cached).
using job_fn = std::function<std::shared_ptr<void const>(job_context&)>;

/// Shared job state: the handle the submitter keeps and the record the
/// runner fills in.  All accessors are thread-safe; `wait()` blocks until a
/// terminal state.
class job {
 public:
  std::uint64_t id() const { return id_; }
  job_desc const& desc() const { return desc_; }

  job_status status() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return status_;
  }
  bool done() const { return is_terminal(status()); }

  /// Block until the job reaches a terminal state; returns it.
  job_status wait() const {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [this] { return is_terminal(status_); });
    return status_;
  }

  /// The type-erased result (null unless completed / cache_hit).
  std::shared_ptr<void const> result() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return result_;
  }

  /// Typed view of the result; the caller knows the algorithm it asked for.
  template <typename R>
  std::shared_ptr<R const> result_as() const {
    return std::static_pointer_cast<R const>(result());
  }

  /// Rejection / failure reason (empty otherwise).
  std::string error() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return error_;
  }

  bool cache_hit() const { return status() == job_status::cache_hit; }

  /// Warm-start attribution (valid once the job retired).
  bool warm_started() const {
    return warm_.warm_start.load(std::memory_order_relaxed);
  }
  bool delta_fallback() const {
    return warm_.delta_fallback.load(std::memory_order_relaxed);
  }
  std::uint64_t delta_edges() const {
    return warm_.delta_edges.load(std::memory_order_relaxed);
  }
  std::uint64_t supersteps_saved() const {
    return warm_.supersteps_saved.load(std::memory_order_relaxed);
  }

  /// Registry epoch the job ran against (0 when not engine-routed).
  std::uint64_t graph_epoch() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return epoch_;
  }

  /// Fusion attribution (valid once the job retired): a non-zero
  /// `batch_size()` means this job was served as lane `lane()` of fused
  /// wave `batch_id()`; zero means it enacted alone (or hit the cache).
  std::uint64_t batch_id() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return batch_id_;
  }
  std::uint32_t batch_size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return batch_size_;
  }
  std::uint32_t lane() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return lane_;
  }

  double queue_ms() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return queue_ms_;
  }
  double run_ms() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return run_ms_;
  }

  /// The job-tagged telemetry trace (populated only for record_trace jobs,
  /// after the job retired).
  telemetry::trace const& trace() const { return trace_; }

  /// Request cooperative cancellation: a queued job is dropped when popped;
  /// a running job stops at its next should_stop() check.
  void cancel() { token_.request_cancel(); }

 private:
  friend class job_scheduler;
  template <typename GraphT>
  friend class analytics_engine;

  job(std::uint64_t id, job_desc desc) : id_(id), desc_(std::move(desc)) {}

  std::uint64_t const id_;
  job_desc const desc_;

  mutable std::mutex mutex_;
  mutable std::condition_variable done_cv_;
  job_status status_ = job_status::queued;
  std::shared_ptr<void const> result_;
  std::string error_;
  std::uint64_t epoch_ = 0;
  double queue_ms_ = 0.0;
  double run_ms_ = 0.0;
  std::uint64_t batch_id_ = 0;
  std::uint32_t batch_size_ = 0;
  std::uint32_t lane_ = 0;
  telemetry::trace trace_;

  enactor::cancel_token token_;
  enactor::time_budget budget_ = enactor::time_budget::unlimited();
  std::atomic<int> fired_{job_context::kFiredNone};
  warm_info warm_;
  std::chrono::steady_clock::time_point submitted_at_{};
  job_fn fn_;
  std::shared_ptr<batch_spec> batch_;  ///< non-null == batchable (fusion key
                                       ///< + lane payload + fused body)
};

using job_ptr = std::shared_ptr<job>;

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

struct scheduler_options {
  std::size_t num_runners = 2;  ///< concurrent jobs in flight (dedicated threads)
  std::size_t max_queued = 64;  ///< admission bound on *waiting* jobs
  /// Dequeue-time fusion: when a popped job is batchable, the runner also
  /// claims every queued job with the same batch key (up to `batch_window`
  /// members total) and enacts them as one fused wave — spilling into
  /// multiple ≤64-lane waves when the window out-collects the lane width.
  /// `batching == false` disables the window entirely (ablation /
  /// latency-isolation baseline); batchable jobs then enact one by one.
  bool batching = true;
  std::size_t batch_window = 256;  ///< max members claimed per fusion window
};

class job_scheduler {
 public:
  /// `stats` (optional) receives lifecycle counters; it must outlive the
  /// scheduler.
  explicit job_scheduler(scheduler_options opt = {},
                         engine_stats* stats = nullptr);

  /// Shuts down without running the backlog (queued jobs retire as
  /// cancelled); in-flight jobs run to their next stop check or
  /// convergence.
  ~job_scheduler();

  job_scheduler(job_scheduler const&) = delete;
  job_scheduler& operator=(job_scheduler const&) = delete;

  /// Submit a job.  Never blocks: past the admission bound (or after
  /// shutdown) the returned handle is already `rejected` with a reason —
  /// backpressure the caller can act on, instead of a deadlock to debug.
  /// `graph_epoch` (engine-routed jobs) stamps the handle and the job's
  /// telemetry trace with the registry epoch it was pinned to.
  job_ptr submit(job_desc desc, job_fn fn, std::uint64_t graph_epoch = 0);

  /// Batchable submission: `batch` (non-null) marks the job fusable with
  /// same-key queued jobs at dequeue time (see engine/batcher.hpp).  `fn`
  /// remains the job's *solo* body — enacted when no compatible partner is
  /// queued (or batching is disabled), so a batchable job never waits for
  /// company.  Builders keep solo and fused bodies on the same lane-packed
  /// code path, which is what makes fused results bit-identical.
  job_ptr submit(job_desc desc, job_fn fn, std::uint64_t graph_epoch,
                 std::shared_ptr<batch_spec> batch);

  /// Stop accepting work.  `run_queued == true` drains the backlog through
  /// the runners first; otherwise queued jobs retire as `cancelled`
  /// (accounted, never silently lost — see mpmc_queue::drain for the
  /// pattern).  Idempotent; joins the runner threads.
  void shutdown(bool run_queued = false);

  std::size_t queued() const;
  std::size_t running() const;
  scheduler_options const& options() const { return opt_; }

  template <typename GraphT>
  friend class analytics_engine;  // terminal-handle construction (cache
                                  // hits, unknown-graph rejections)

 private:
  struct queued_item {
    int priority = 0;
    std::uint64_t seq = 0;  // FIFO tiebreak within a priority class
    job_ptr j;
  };
  struct item_less {
    bool operator()(queued_item const& a, queued_item const& b) const {
      if (a.priority != b.priority)
        return a.priority < b.priority;  // higher priority on top
      return a.seq > b.seq;              // earlier submission on top
    }
  };

  void runner_loop();
  void run_job(job_ptr const& j);
  /// Claim every queued job whose batch key matches `first`'s (up to
  /// `batch_window` members total, `first` included) — the fusion window.
  /// Called with `mutex_` held; bumps `running_` for each claimed extra.
  /// Returns the members in pop (priority/FIFO) order, or an empty vector
  /// when no partner was queued (caller falls back to run_job).
  std::vector<job_ptr> collect_batch_locked(job_ptr const& first);
  /// Triage (queued-deadline / cancelled / per-member cache probe), then
  /// chunk survivors into ≤max_lanes waves and enact each through the
  /// members' shared fused body, demuxing + publishing per-member results.
  void run_fused(std::vector<job_ptr> const& members);
  void run_wave(std::vector<job_ptr> const& wave);
  static void retire(job_ptr const& j, job_status s,
                     std::shared_ptr<void const> result, std::string error);
  void count_terminal(job_status s);

  scheduler_options const opt_;
  engine_stats* const stats_;

  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::priority_queue<queued_item, std::vector<queued_item>, item_less>
      queue_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t next_id_ = 1;
  std::atomic<std::uint64_t> next_batch_id_{1};
  std::size_t running_ = 0;
  bool stopping_ = false;
  bool drain_backlog_ = false;
  std::vector<std::thread> runners_;
};

}  // namespace essentials::engine
