#pragma once

/// \file engine/stats.hpp
/// \brief Engine-level aggregate metrics: the per-job telemetry rollup of
/// the concurrent analytics engine (submissions, completions, rejections,
/// cancellations, deadline expiries, cache hits/misses, queue-wait and run
/// wall time), with JSON export in the style of core/telemetry.hpp.
///
/// Relationship to the telemetry layer: core/telemetry.hpp records the
/// *inside* of one enactment (supersteps, operator work counts);
/// engine_stats records the *outside* of many (what happened to each job
/// between submission and retirement).  A job that records a trace gets
/// both: the trace is tagged with its job id/tag (telemetry schema v3) and
/// the engine counters account for its lifecycle.
///
/// Concurrency: counters are relaxed atomics bumped from runner threads and
/// the submission path; `snapshot()` reads them relaxedly — the exported
/// numbers are a monitoring view, never a synchronization device (same
/// contract as thread_pool::stats()).

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <fstream>
#include <ostream>
#include <string>

namespace essentials::engine {

/// Plain-value snapshot of the engine counters (safe to copy, print, diff).
struct engine_stats_snapshot {
  std::uint64_t submitted = 0;         ///< jobs accepted by admission control
  std::uint64_t rejected = 0;          ///< jobs refused (queue bound / shutdown / unknown graph)
  std::uint64_t completed = 0;         ///< jobs that ran to convergence
  std::uint64_t failed = 0;            ///< jobs whose enactment threw
  std::uint64_t cancelled = 0;         ///< jobs stopped by cancel_token
  std::uint64_t deadline_expired = 0;  ///< jobs stopped by their deadline
  std::uint64_t cache_hits = 0;        ///< queries served from the result cache
  std::uint64_t cache_misses = 0;      ///< cacheable queries that had to enact
  std::uint64_t cache_evictions = 0;   ///< LRU evictions
  std::uint64_t cache_invalidations = 0;  ///< evicted + demoted on epoch publish
  std::uint64_t cache_demotions = 0;   ///< entries demoted to warm-startable
  std::uint64_t warm_start_hits = 0;   ///< enactments seeded from a warm entry
  std::uint64_t delta_fallbacks = 0;   ///< warm candidates forced onto cold path
  std::uint64_t jobs_enacted = 0;      ///< enactments actually launched
  std::uint64_t batches = 0;           ///< fused enactment waves launched
  std::uint64_t batched_jobs = 0;      ///< jobs served as lanes of a fused wave
  std::uint64_t edge_passes_saved = 0; ///< full traversals avoided by fusion
  // v4 — residual engine (standing queries, src/residual/):
  std::uint64_t standing_queries = 0;     ///< standing queries ever registered
  std::uint64_t residual_injections = 0;  ///< residual shares injected on epoch publishes
  std::uint64_t residual_reconverges = 0; ///< in-place re-convergences completed
  std::uint64_t residual_fallbacks = 0;   ///< epoch updates forced to full re-init
  std::uint64_t residual_edges_touched = 0;  ///< out-edges relaxed by reconverges
  std::uint64_t residual_edges_cold_estimate = 0;  ///< edge passes a cold rerun would cost
  // v5 — registry storage tier (compressed + out-of-core graphs):
  std::uint64_t tier_demotions = 0;   ///< cold epochs spilled to the disk tier
  std::uint64_t tier_promotions = 0;  ///< demoted epochs paged back on lookup
  std::uint64_t tier_resident_bytes = 0;  ///< bytes of snapshots held in RAM (gauge)
  std::uint64_t tier_spilled_bytes = 0;   ///< bytes of snapshots on disk (gauge)
  double queue_ms_total = 0.0;         ///< sum of per-job queue wait
  double run_ms_total = 0.0;           ///< sum of per-job run wall time

  /// Jobs retired in any terminal state (excluding cache hits, which never
  /// enter the queue).
  std::uint64_t retired() const {
    return completed + failed + cancelled + deadline_expired;
  }
  double hit_ratio() const {
    std::uint64_t const total = cache_hits + cache_misses;
    return total == 0 ? 0.0
                      : static_cast<double>(cache_hits) /
                            static_cast<double>(total);
  }
  /// Fraction of enactments (not cache hits) that ran warm-started.
  double warm_ratio() const {
    return jobs_enacted == 0 ? 0.0
                             : static_cast<double>(warm_start_hits) /
                                   static_cast<double>(jobs_enacted);
  }
  /// Mean members per fused wave (0 when nothing ever fused).
  double avg_batch_size() const {
    return batches == 0 ? 0.0
                        : static_cast<double>(batched_jobs) /
                              static_cast<double>(batches);
  }
  /// Edge work of in-place re-convergence relative to cold reruns of the
  /// same epochs (0.01 == the residual engine touched 1% of the edges a
  /// cold rerun would have; 0 when no standing query ever re-converged).
  double residual_pass_ratio() const {
    return residual_edges_cold_estimate == 0
               ? 0.0
               : static_cast<double>(residual_edges_touched) /
                     static_cast<double>(residual_edges_cold_estimate);
  }
};

/// Thread-safe counter block shared by scheduler, cache and engine facade.
class engine_stats {
 public:
  void on_submitted() { submitted_.fetch_add(1, relaxed); }
  void on_rejected() { rejected_.fetch_add(1, relaxed); }
  void on_completed() { completed_.fetch_add(1, relaxed); }
  void on_failed() { failed_.fetch_add(1, relaxed); }
  void on_cancelled() { cancelled_.fetch_add(1, relaxed); }
  void on_deadline_expired() { deadline_expired_.fetch_add(1, relaxed); }
  void on_cache_hit() { cache_hits_.fetch_add(1, relaxed); }
  void on_cache_miss() { cache_misses_.fetch_add(1, relaxed); }
  void on_cache_eviction() { cache_evictions_.fetch_add(1, relaxed); }
  void on_cache_invalidation(std::size_t n) {
    cache_invalidations_.fetch_add(n, relaxed);
  }
  void on_cache_demotion(std::size_t n) {
    cache_demotions_.fetch_add(n, relaxed);
  }
  void on_warm_start_hit() { warm_start_hits_.fetch_add(1, relaxed); }
  void on_delta_fallback() { delta_fallbacks_.fetch_add(1, relaxed); }
  void on_enacted() { jobs_enacted_.fetch_add(1, relaxed); }
  /// One fused wave retired: `members` jobs shared the traversal,
  /// `passes_saved` full edge passes were avoided versus serial enactment.
  void on_batch(std::size_t members, std::uint64_t passes_saved) {
    batches_.fetch_add(1, relaxed);
    batched_jobs_.fetch_add(members, relaxed);
    edge_passes_saved_.fetch_add(passes_saved, relaxed);
  }
  void on_standing_query() { standing_queries_.fetch_add(1, relaxed); }
  void on_residual_injection(std::size_t n) {
    residual_injections_.fetch_add(n, relaxed);
  }
  /// One in-place re-convergence retired: it relaxed `edges_touched`
  /// out-edges where a cold rerun of the same query would have spent an
  /// estimated `edges_cold` (the residual engine's headline ratio).
  void on_residual_reconverge(std::uint64_t edges_touched,
                              std::uint64_t edges_cold) {
    residual_reconverges_.fetch_add(1, relaxed);
    residual_edges_touched_.fetch_add(edges_touched, relaxed);
    residual_edges_cold_estimate_.fetch_add(edges_cold, relaxed);
  }
  void on_residual_fallback() { residual_fallbacks_.fetch_add(1, relaxed); }
  void on_tier_demotion() { tier_demotions_.fetch_add(1, relaxed); }
  void on_tier_promotion() { tier_promotions_.fetch_add(1, relaxed); }
  /// Gauges, not counters: the registry reports its current accounting
  /// after every tier transition (publish/demote/promote/remove).
  void set_tier_resident_bytes(std::uint64_t bytes) {
    tier_resident_bytes_.store(bytes, relaxed);
  }
  void set_tier_spilled_bytes(std::uint64_t bytes) {
    tier_spilled_bytes_.store(bytes, relaxed);
  }
  void add_queue_wait_ms(double ms) {
    queue_us_.fetch_add(to_us(ms), relaxed);
  }
  void add_run_ms(double ms) { run_us_.fetch_add(to_us(ms), relaxed); }

  engine_stats_snapshot snapshot() const {
    engine_stats_snapshot s;
    s.submitted = submitted_.load(relaxed);
    s.rejected = rejected_.load(relaxed);
    s.completed = completed_.load(relaxed);
    s.failed = failed_.load(relaxed);
    s.cancelled = cancelled_.load(relaxed);
    s.deadline_expired = deadline_expired_.load(relaxed);
    s.cache_hits = cache_hits_.load(relaxed);
    s.cache_misses = cache_misses_.load(relaxed);
    s.cache_evictions = cache_evictions_.load(relaxed);
    s.cache_invalidations = cache_invalidations_.load(relaxed);
    s.cache_demotions = cache_demotions_.load(relaxed);
    s.warm_start_hits = warm_start_hits_.load(relaxed);
    s.delta_fallbacks = delta_fallbacks_.load(relaxed);
    s.jobs_enacted = jobs_enacted_.load(relaxed);
    s.batches = batches_.load(relaxed);
    s.batched_jobs = batched_jobs_.load(relaxed);
    s.edge_passes_saved = edge_passes_saved_.load(relaxed);
    s.standing_queries = standing_queries_.load(relaxed);
    s.residual_injections = residual_injections_.load(relaxed);
    s.residual_reconverges = residual_reconverges_.load(relaxed);
    s.residual_fallbacks = residual_fallbacks_.load(relaxed);
    s.residual_edges_touched = residual_edges_touched_.load(relaxed);
    s.residual_edges_cold_estimate =
        residual_edges_cold_estimate_.load(relaxed);
    s.tier_demotions = tier_demotions_.load(relaxed);
    s.tier_promotions = tier_promotions_.load(relaxed);
    s.tier_resident_bytes = tier_resident_bytes_.load(relaxed);
    s.tier_spilled_bytes = tier_spilled_bytes_.load(relaxed);
    s.queue_ms_total = static_cast<double>(queue_us_.load(relaxed)) / 1000.0;
    s.run_ms_total = static_cast<double>(run_us_.load(relaxed)) / 1000.0;
    return s;
  }

 private:
  static constexpr auto relaxed = std::memory_order_relaxed;
  static std::uint64_t to_us(double ms) {
    return ms <= 0.0 ? 0 : static_cast<std::uint64_t>(ms * 1000.0);
  }

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> deadline_expired_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> cache_misses_{0};
  std::atomic<std::uint64_t> cache_evictions_{0};
  std::atomic<std::uint64_t> cache_invalidations_{0};
  std::atomic<std::uint64_t> cache_demotions_{0};
  std::atomic<std::uint64_t> warm_start_hits_{0};
  std::atomic<std::uint64_t> delta_fallbacks_{0};
  std::atomic<std::uint64_t> jobs_enacted_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> batched_jobs_{0};
  std::atomic<std::uint64_t> edge_passes_saved_{0};
  std::atomic<std::uint64_t> standing_queries_{0};
  std::atomic<std::uint64_t> residual_injections_{0};
  std::atomic<std::uint64_t> residual_reconverges_{0};
  std::atomic<std::uint64_t> residual_fallbacks_{0};
  std::atomic<std::uint64_t> residual_edges_touched_{0};
  std::atomic<std::uint64_t> residual_edges_cold_estimate_{0};
  std::atomic<std::uint64_t> tier_demotions_{0};
  std::atomic<std::uint64_t> tier_promotions_{0};
  std::atomic<std::uint64_t> tier_resident_bytes_{0};
  std::atomic<std::uint64_t> tier_spilled_bytes_{0};
  std::atomic<std::uint64_t> queue_us_{0};  // microseconds (atomic-friendly)
  std::atomic<std::uint64_t> run_us_{0};
};

/// Serialize a snapshot as a self-describing JSON object, schema-sistered
/// to the telemetry export (docs/API.md, "Engine metrics").
inline void write_json(engine_stats_snapshot const& s, std::ostream& os) {
  // Schema history: v3 added batching counters; v4 added the residual
  // engine block (standing_queries .. residual_pass_ratio); v5 adds the
  // registry storage-tier block (tier_demotions .. tier_spilled_bytes).
  // The golden test in tests/test_engine.cpp (EngineStatsSchema) pins
  // every key — bumps must be deliberate.
  os << "{\"engine_stats_version\":5"
     << ",\"submitted\":" << s.submitted << ",\"rejected\":" << s.rejected
     << ",\"completed\":" << s.completed << ",\"failed\":" << s.failed
     << ",\"cancelled\":" << s.cancelled
     << ",\"deadline_expired\":" << s.deadline_expired
     << ",\"cache_hits\":" << s.cache_hits
     << ",\"cache_misses\":" << s.cache_misses
     << ",\"cache_evictions\":" << s.cache_evictions
     << ",\"cache_invalidations\":" << s.cache_invalidations
     << ",\"cache_demotions\":" << s.cache_demotions
     << ",\"warm_start_hits\":" << s.warm_start_hits
     << ",\"delta_fallbacks\":" << s.delta_fallbacks
     << ",\"jobs_enacted\":" << s.jobs_enacted
     << ",\"batches\":" << s.batches
     << ",\"batched_jobs\":" << s.batched_jobs
     << ",\"edge_passes_saved\":" << s.edge_passes_saved
     << ",\"standing_queries\":" << s.standing_queries
     << ",\"residual_injections\":" << s.residual_injections
     << ",\"residual_reconverges\":" << s.residual_reconverges
     << ",\"residual_fallbacks\":" << s.residual_fallbacks
     << ",\"residual_edges_touched\":" << s.residual_edges_touched
     << ",\"residual_edges_cold_estimate\":" << s.residual_edges_cold_estimate
     << ",\"tier_demotions\":" << s.tier_demotions
     << ",\"tier_promotions\":" << s.tier_promotions
     << ",\"tier_resident_bytes\":" << s.tier_resident_bytes
     << ",\"tier_spilled_bytes\":" << s.tier_spilled_bytes
     << ",\"residual_pass_ratio\":" << s.residual_pass_ratio()
     << ",\"avg_batch_size\":" << s.avg_batch_size()
     << ",\"hit_ratio\":" << s.hit_ratio()
     << ",\"warm_ratio\":" << s.warm_ratio()
     << ",\"queue_ms_total\":" << s.queue_ms_total
     << ",\"run_ms_total\":" << s.run_ms_total << "}";
}

inline bool write_json(engine_stats_snapshot const& s,
                       std::string const& path) {
  std::ofstream os(path);
  if (!os)
    return false;
  write_json(s, os);
  os << "\n";
  return static_cast<bool>(os);
}

}  // namespace essentials::engine
