#pragma once

/// \file engine/engine.hpp
/// \brief The analytics engine facade: registry + scheduler + result cache
/// + metrics wired into one object — the layer that turns "a library that
/// runs one algorithm" into "a service that runs many, concurrently, over
/// shared mutating graphs".
///
/// Query path (the protocol, also documented in docs/ARCHITECTURE.md):
///
///   submit(desc, fn)
///     ├─ registry.lookup(desc.graph)         — pin (snapshot, epoch)
///     ├─ cache.lookup(graph, epoch, algo, params)
///     │    └─ hit  → handle retires instantly as `cache_hit` (no queue,
///     │             no enactment; determinism makes the result
///     │             bit-identical to a re-run)
///     └─ miss → scheduler.submit: priority queue → runner thread →
///              fn(snapshot, ctx) under deadline/cancel conditions →
///              `completed` results are inserted into the cache keyed by
///              the epoch pinned at submission
///
///   registry.publish(name, ...) — swaps the snapshot, bumps the epoch and
///   (via subscription) invalidates cache entries of that graph *only*.
///   In-flight jobs keep their pinned epoch and finish correctly; their
///   late cache inserts carry the old epoch in the key, so they can never
///   be confused with fresh-epoch results (the eager invalidation is an
///   optimization; the epoch-in-key is the correctness).
///
/// The facade is templated on the concrete graph type it serves
/// (`analytics_engine<graph::graph_push_pull>` is the common
/// instantiation); the scheduler/cache/stats below it are type-erased and
/// compiled once (engine/scheduler.cpp).

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "engine/batcher.hpp"
#include "engine/registry.hpp"
#include "engine/result_cache.hpp"
#include "engine/scheduler.hpp"
#include "engine/stats.hpp"
#include "residual/standing.hpp"

namespace essentials::engine {

struct engine_options {
  std::size_t num_runners = 2;       ///< concurrent jobs in flight
  std::size_t max_queued = 64;       ///< admission bound
  std::size_t cache_capacity = 128;  ///< result-cache entries (0 disables)
  bool warm_starts = true;  ///< serve warm-start submissions incrementally
  bool batching = true;     ///< fuse compatible queued jobs at dequeue time
  std::size_t batch_window = 256;  ///< max members per fusion window
  /// Registry storage tier: when `tier_spill_dir` is non-empty (or
  /// `ESSENTIALS_OOC=1` is set in the environment) the registry demotes
  /// cold epochs to block-coded spill files and pages them back on lookup.
  /// `tier_budget_bytes` bounds resident snapshot bytes (0 == unlimited —
  /// only explicit `registry().demote()` calls spill).
  std::string tier_spill_dir = {};  ///< empty == tier off (unless env enables)
  std::uint64_t tier_budget_bytes = 0;
};

/// Graph-typed half of the fusion contract (the type-erased half is
/// `batch_spec`, engine/batcher.hpp): what a batchable query hands
/// `submit_batch` beyond its cold body.  engine/batch_jobs.hpp builds
/// these for BFS / SSSP / closeness.
template <typename GraphT>
struct batch_hints {
  /// This member's lane input (e.g. its source vertex), delivered to the
  /// fused body positionally via `batch_lane::payload`.
  std::shared_ptr<void const> payload;
  /// Lane width of one fused enactment (≤ 64).
  std::size_t max_lanes = 64;
  /// The shared enactment over the pinned snapshot.  Null == this query
  /// opted out of fusion (`execution::batch::independent`); the engine
  /// then degrades to the plain `submit` path.
  std::function<fused_outcome(GraphT const&, std::vector<batch_lane> const&)>
      fused;
};

/// A cold body + its fusion hints, as returned by the batchable job
/// builders (engine/batch_jobs.hpp).
template <typename GraphT>
struct batchable_job {
  std::function<std::shared_ptr<void const>(GraphT const&, job_context&)>
      cold;
  batch_hints<GraphT> hints;
};

template <typename GraphT>
class analytics_engine {
 public:
  using graph_type = GraphT;

  /// Job body: runs against the pinned snapshot with the cooperative stop
  /// context.  Return the (heap-allocated, immutable) result to publish to
  /// the handle and the cache; null results are valid but never cached.
  using typed_job_fn = std::function<std::shared_ptr<void const>(
      GraphT const&, job_context&)>;

  using delta_type = typename graph_registry<GraphT>::delta_type;

  /// Warm job body: runs against the pinned snapshot *plus* a stale
  /// converged result (type-erased, same algorithm/params, older epoch) and
  /// the edge delta covering (stale epoch, pinned epoch].  The body decides
  /// whether the delta admits an incremental enactment (insert-only fast
  /// path) and reports the outcome via `ctx.note_warm_start` /
  /// `ctx.note_delta_fallback` — engine/warm_jobs.hpp provides canonical
  /// bodies for SSSP/BFS/CC.
  using warm_job_fn = std::function<std::shared_ptr<void const>(
      GraphT const&, std::shared_ptr<void const> const&, delta_type const&,
      job_context&)>;

  explicit analytics_engine(engine_options opt = {})
      : warm_starts_(opt.warm_starts),
        cache_(opt.cache_capacity, &stats_),
        scheduler_(scheduler_options{opt.num_runners, opt.max_queued,
                                     opt.batching, opt.batch_window},
                   &stats_) {
    // Epoch publication protocol: a new epoch of graph G invalidates
    // cached results of G only; other graphs' entries survive.  Since PR 4
    // invalidation *demotes* the newest entry per query identity to a
    // warm-start seed instead of evicting it (result_cache.hpp).
    registry_.subscribe([this](std::string const& name, std::uint64_t) {
      cache_.invalidate_graph(name);
      notify_standing(name);
    });
    // Storage tier: explicit options win; otherwise the ESSENTIALS_OOC
    // env knobs can switch it on without a code change (CONTRIBUTING.md).
    registry_.set_stats(&stats_);
    if constexpr (tier_spillable<GraphT>) {
      if (!opt.tier_spill_dir.empty()) {
        registry_.enable_tier(
            tier_options{opt.tier_spill_dir, opt.tier_budget_bytes});
      } else if (auto const env = tier_config_from_env(); env.enabled) {
        registry_.enable_tier(env.options);
      }
    }
  }

  ~analytics_engine() {
    // Standing queries hold `&stats_` and may be mid-reconverge on the
    // worker pool: stop them *before* any engine member destructs.  Their
    // shutdown() detaches the stats pointer, so a user-held shared_ptr that
    // outlives the engine stays safe (it just stops counting).
    std::vector<std::weak_ptr<residual::standing_query_base<GraphT>>> held;
    {
      std::lock_guard<std::mutex> guard(standing_mutex_);
      held.swap(standing_);
    }
    for (auto& weak : held)
      if (auto q = weak.lock())
        q->shutdown();
    scheduler_.shutdown(/*run_queued=*/false);
  }

  graph_registry<GraphT>& registry() { return registry_; }
  graph_registry<GraphT> const& registry() const { return registry_; }
  result_cache& cache() { return cache_; }
  job_scheduler& scheduler() { return scheduler_; }
  engine_stats_snapshot stats() const { return stats_.snapshot(); }

  /// Submit an analytics query.  The returned handle is live immediately:
  /// `cache_hit` / `rejected` handles are already terminal, queued handles
  /// retire when a runner finishes (or refuses) them.  Thread-safe.
  job_ptr submit(job_desc desc, typed_job_fn fn) {
    auto pinned = registry_.lookup(desc.graph);
    if (!pinned) {
      job_ptr j(new job(0, std::move(desc)));
      job_scheduler::retire(j, job_status::rejected, nullptr,
                            "unknown graph: " + j->desc().graph);
      stats_.on_rejected();
      return j;
    }

    cache_key const key{desc.graph, pinned.epoch, desc.algorithm,
                        desc.params};
    if (desc.use_cache && cache_.capacity() != 0) {
      if (auto hit = cache_.lookup(key)) {
        job_ptr j(new job(0, std::move(desc)));
        j->epoch_ = pinned.epoch;
        job_scheduler::retire(j, job_status::cache_hit, std::move(hit), {});
        return j;
      }
      // miss already counted by cache_.lookup
    }

    bool const cacheable = desc.use_cache && cache_.capacity() != 0;
    return scheduler_.submit(
        std::move(desc),
        [this, pinned, key, cacheable,
         fn = std::move(fn)](job_context& ctx) -> std::shared_ptr<void const> {
          // Dequeue-time re-check: an identical query that completed while
          // this one waited in the queue supplies the result without
          // re-enacting (duplicate suppression for bursts of the same
          // query).  The job still retires as `completed` — determinism
          // makes the cached result indistinguishable from a re-run.
          if (cacheable)
            if (auto hit = cache_.lookup(key))
              return hit;
          auto result = fn(*pinned.graph, ctx);
          // Only converged results are cacheable: a deadline-truncated or
          // cancelled enactment is a partial answer.  `fired()` reads the
          // recorded outcome instead of re-evaluating the clock, so a job
          // that converged just before its deadline still caches.
          if (cacheable && result &&
              ctx.fired() == job_context::kFiredNone)
            cache_.insert(key, result);
          return result;
        },
        pinned.epoch);
  }

  /// Warm-start-capable submission: like `submit(desc, cold)`, but when the
  /// exact-epoch lookup misses and the cache still holds a *demoted* entry
  /// of the same query identity at an older epoch whose delta chain to the
  /// pinned epoch is intact, the runner invokes `warm(snapshot, stale
  /// result, delta, ctx)` instead of `cold` — the incremental fast path.
  /// Every degradation (no warm seed, broken delta chain, warm body decides
  /// the delta is not monotone) lands on the cold body; a broken chain with
  /// a warm seed available is additionally counted as a `delta_fallback`.
  /// Results are cached identically either way — determinism makes the
  /// warm-started result bit-identical to a cold enactment (differentially
  /// verified in tests/test_delta.cpp).
  job_ptr submit(job_desc desc, typed_job_fn cold, warm_job_fn warm) {
    auto pinned = registry_.lookup(desc.graph);
    if (!pinned) {
      job_ptr j(new job(0, std::move(desc)));
      job_scheduler::retire(j, job_status::rejected, nullptr,
                            "unknown graph: " + j->desc().graph);
      stats_.on_rejected();
      return j;
    }

    cache_key const key{desc.graph, pinned.epoch, desc.algorithm,
                        desc.params};
    bool const cacheable = desc.use_cache && cache_.capacity() != 0;
    if (cacheable) {
      if (auto hit = cache_.lookup(key)) {
        job_ptr j(new job(0, std::move(desc)));
        j->epoch_ = pinned.epoch;
        job_scheduler::retire(j, job_status::cache_hit, std::move(hit), {});
        return j;
      }
    }

    return scheduler_.submit(
        std::move(desc),
        [this, pinned, key, cacheable, cold = std::move(cold),
         warm = std::move(warm)](
            job_context& ctx) -> std::shared_ptr<void const> {
          if (cacheable)
            if (auto hit = cache_.lookup(key))
              return hit;  // dequeue-time duplicate suppression
          std::shared_ptr<void const> result;
          bool enacted_warm = false;
          if (warm_starts_ && cacheable) {
            // Warm probe at *run* time, not submit time: a duplicate job
            // that completed while we queued has already refreshed the
            // cache (handled above), and a publish that happened while we
            // queued cannot help us — our epoch pin is fixed.
            if (auto seed = cache_.lookup_warm(key)) {
              auto const delta =
                  registry_.delta_between(key.graph, seed.epoch, key.epoch);
              if (delta.complete) {
                result = warm(*pinned.graph, seed.value, delta, ctx);
                enacted_warm = true;
              } else {
                // A seed existed but the delta chain is broken: cold run,
                // counted so operators can see missed warm opportunities.
                ctx.note_delta_fallback();
              }
            }
          }
          if (!enacted_warm)
            result = cold(*pinned.graph, ctx);
          if (cacheable && result && ctx.fired() == job_context::kFiredNone)
            cache_.insert(key, result);
          return result;
        },
        pinned.epoch);
  }

  /// Batchable submission: like `submit(desc, cold)`, but the job also
  /// carries fusion hints — at dequeue time the scheduler coalesces every
  /// queued job with the same `(graph, epoch, algorithm)` key into one
  /// lane-packed enactment (engine/batcher.hpp), demuxing per-member
  /// results; each member's converged result is inserted into the cache
  /// under its *own* `(graph, epoch, algorithm, params)` key, and members
  /// that individually hit the cache at dequeue time retire `cache_hit`
  /// before lane assignment.  With null `hints.fused` (the
  /// `execution::batch::independent` spelling) this degrades to the plain
  /// `submit` path — the query always enacts alone.
  job_ptr submit_batch(job_desc desc, typed_job_fn cold,
                       batch_hints<GraphT> hints) {
    if (!hints.fused)
      return submit(std::move(desc), std::move(cold));

    auto pinned = registry_.lookup(desc.graph);
    if (!pinned) {
      job_ptr j(new job(0, std::move(desc)));
      job_scheduler::retire(j, job_status::rejected, nullptr,
                            "unknown graph: " + j->desc().graph);
      stats_.on_rejected();
      return j;
    }

    cache_key const key{desc.graph, pinned.epoch, desc.algorithm,
                        desc.params};
    bool const cacheable = desc.use_cache && cache_.capacity() != 0;
    if (cacheable) {
      if (auto hit = cache_.lookup(key)) {
        job_ptr j(new job(0, std::move(desc)));
        j->epoch_ = pinned.epoch;
        job_scheduler::retire(j, job_status::cache_hit, std::move(hit), {});
        return j;
      }
    }

    // Type-erase the fusion contract.  The key pins (graph name, epoch,
    // algorithm): a publish between two submissions changes the epoch and
    // therefore splits the batch — a fused wave can never straddle
    // snapshots, because the fused closure captured this pin by value.
    auto spec = std::make_shared<batch_spec>();
    spec->key = make_batch_key(desc.graph, pinned.epoch, desc.algorithm);
    spec->payload = std::move(hints.payload);
    spec->max_lanes = hints.max_lanes;
    if (cacheable) {
      spec->cache_probe = [this, key]() { return cache_.lookup(key); };
      spec->publish = [this, key](std::shared_ptr<void const> const& r) {
        cache_.insert(key, r);
      };
    }
    spec->fused = [pinned, fused = std::move(hints.fused)](
                      std::vector<batch_lane> const& lanes) {
      return fused(*pinned.graph, lanes);
    };

    // The solo body (no compatible partner queued) is the same wrapper the
    // plain path uses: dequeue-time cache re-check, enact, cache insert.
    return scheduler_.submit(
        std::move(desc),
        [this, pinned, key, cacheable,
         cold = std::move(cold)](job_context& ctx)
            -> std::shared_ptr<void const> {
          if (cacheable)
            if (auto hit = cache_.lookup(key))
              return hit;
          auto result = cold(*pinned.graph, ctx);
          if (cacheable && result && ctx.fired() == job_context::kFiredNone)
            cache_.insert(key, result);
          return result;
        },
        pinned.epoch, std::move(spec));
  }

  /// Convenience: batchable submission from a builder's bundle
  /// (engine/batch_jobs.hpp).
  job_ptr submit_batch(job_desc desc, batchable_job<GraphT> bj) {
    return submit_batch(std::move(desc), std::move(bj.cold),
                        std::move(bj.hints));
  }

  /// Convenience: submit and block for the terminal status.
  job_ptr run(job_desc desc, typed_job_fn fn) {
    auto j = submit(std::move(desc), std::move(fn));
    j->wait();
    return j;
  }

  /// Convenience: warm-capable submit-and-wait.
  job_ptr run(job_desc desc, typed_job_fn cold, warm_job_fn warm) {
    auto j = submit(std::move(desc), std::move(cold), std::move(warm));
    j->wait();
    return j;
  }

  /// Register a standing query: a residual engine for `algebra` over graph
  /// `name`, seeded by `seed`, converged immediately, and then kept
  /// converged across every `registry().publish(name, ...)` — each publish
  /// flows in as (snapshot, delta) and re-converges in time proportional to
  /// the change (residual/standing.hpp).  `base` enables the exact epoch
  /// rebase for sum algebras.  Returns null for an unknown graph.  The
  /// engine holds only a weak reference: dropping the returned shared_ptr
  /// deregisters the query.
  template <typename A>
  std::shared_ptr<residual::standing_query<GraphT, A>> submit_standing(
      std::string const& name, A algebra,
      typename residual::standing_query<GraphT, A>::seed_fn seed,
      residual::standing_options opt = {},
      typename residual::standing_query<GraphT, A>::base_fn base = {}) {
    auto pinned = registry_.lookup(name);
    if (!pinned)
      return nullptr;
    auto q = std::make_shared<residual::standing_query<GraphT, A>>(
        name, std::move(pinned), std::move(algebra), std::move(seed), opt,
        std::move(base), &stats_);
    {
      std::lock_guard<std::mutex> guard(standing_mutex_);
      standing_.push_back(q);
    }
    stats_.on_standing_query();
    return q;
  }

 private:
  /// Publish fan-out (runs on the publishing thread, post-swap, outside the
  /// registry lock).  Dead weak_ptrs are pruned in passing; the (pin,
  /// delta) pair is resolved here so threaded queries only enqueue.
  void notify_standing(std::string const& name) {
    std::vector<std::shared_ptr<residual::standing_query_base<GraphT>>> live;
    {
      std::lock_guard<std::mutex> guard(standing_mutex_);
      auto it = standing_.begin();
      while (it != standing_.end()) {
        if (auto q = it->lock()) {
          if (q->graph_name() == name)
            live.push_back(std::move(q));
          ++it;
        } else {
          it = standing_.erase(it);
        }
      }
    }
    for (auto const& q : live) {
      auto pinned = registry_.lookup(name);
      if (!pinned)
        continue;
      auto delta =
          registry_.delta_between(name, q->base_epoch(), pinned.epoch);
      q->on_publish(std::move(pinned), std::move(delta));
    }
  }

  bool const warm_starts_;
  engine_stats stats_;
  graph_registry<GraphT> registry_;
  result_cache cache_;
  job_scheduler scheduler_;
  std::vector<std::weak_ptr<residual::standing_query_base<GraphT>>> standing_;
  std::mutex standing_mutex_;
};

}  // namespace essentials::engine
