#pragma once

/// \file engine/batcher.hpp
/// \brief Request batching: the type-erased contract that lets the
/// scheduler fuse compatible queued jobs into one lane-packed enactment.
///
/// The serving-stack observation (same one inference batching exploits): N
/// queued traversals over the same `(graph, epoch)` pay N full passes over
/// the edge list, yet the paper's §III-B frontier abstraction already
/// admits a *vector-of-bitmask* representation (algorithms/msbfs.hpp) that
/// advances up to 64 searches per edge pass.  Batching is therefore not a
/// new algorithm but a new *enactment shape* for an existing one — the
/// scheduler only needs a way to (a) recognize compatible jobs at dequeue
/// time and (b) hand them to a fused body that demuxes per-member results.
///
/// This header defines that contract:
///
///  - `batch_spec` — attached to a job at submission when the query is
///    *batchable*.  Carries the compatibility `key` (graph ␟ epoch ␟
///    algorithm — jobs fuse only when the whole tuple matches, so a batch
///    can never straddle an epoch publish: the fused closure pins one
///    snapshot), the member's lane `payload` (e.g. its source vertex), and
///    three closures bound by the engine facade: `cache_probe` (dequeue-
///    time per-member cache re-check, run *before* lane assignment),
///    `publish` (insert this member's converged result under its own
///    cache key) and `fused` (the shared enactment).
///  - `batch_lane` / `fused_outcome` — the fused body's in/out shapes: one
///    lane per live member, each with its *own* `job_context`, results
///    demuxed positionally (null for lanes whose guard fired).
///  - `live_lane_mask` — adapts a wave's contexts to the per-superstep
///    `lane_mask` callable of `multi_source_bfs` / `multi_source_sssp`: a
///    member whose deadline or cancel token fires is masked out of the
///    traversal and the batch keeps converging for everyone else.
///
/// The fusion window itself (collect-by-key at dequeue, wave chunking at
/// `max_lanes`, per-member classification/publish) lives in
/// engine/scheduler.cpp; the algorithm-specific fused bodies live in
/// engine/batch_jobs.hpp.  Opting out: submit with
/// `execution::batch::independent` (engine facade) and no spec is
/// attached — the job always enacts alone.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "engine/scheduler.hpp"

namespace essentials::engine {

/// One live member of a fused wave, as seen by the fused body.
struct batch_lane {
  /// The member's lane input (engine-bound; e.g. a `vertex_t` source).
  std::shared_ptr<void const> payload;
  /// The member's own stop machinery — deadlines and cancellation stay
  /// *per-member* inside the fused enactment (see `live_lane_mask`).
  job_context* ctx = nullptr;
};

/// What a fused body returns: positionally demuxed per-lane results (null
/// for lanes whose guard fired mid-batch — those members retire
/// `deadline_expired` / `cancelled` and are never cached) plus the number
/// of full edge-list traversals actually performed, so the scheduler can
/// account `edge_passes_saved = members - edge_passes` per wave.
struct fused_outcome {
  std::vector<std::shared_ptr<void const>> results;
  std::size_t edge_passes = 1;
};

/// The shared enactment: runs once for a wave of ≤ `max_lanes` members.
using fused_fn = std::function<fused_outcome(std::vector<batch_lane> const&)>;

/// Compatibility key for the fusion window.  U+001F separators keep graph
/// names containing digits from colliding with the epoch field.
inline std::string make_batch_key(std::string const& graph,
                                  std::uint64_t epoch,
                                  std::string const& algorithm) {
  return graph + '\x1f' + std::to_string(epoch) + '\x1f' + algorithm;
}

/// Attached to a job at submission to mark it batchable.  Every member of
/// a wave carries its own spec (own payload / cache closures); the wave is
/// enacted through the *first* member's `fused` — sound because key
/// equality pins the same graph snapshot content and algorithm.
struct batch_spec {
  /// Fusion compatibility: jobs coalesce iff keys are equal.
  std::string key;

  /// This member's lane input, handed to the fused body positionally.
  std::shared_ptr<void const> payload;

  /// Lane width of one fused enactment (≤ 64 — one bit lane each).  A
  /// collection larger than this spills into multiple waves.
  std::size_t max_lanes = 64;

  /// Dequeue-time cache re-check for *this member's* own
  /// `(graph, epoch, algorithm, params)` key.  Run before lane assignment:
  /// a member another job already satisfied retires `cache_hit` and never
  /// occupies a lane.  Null result == miss.  May be empty (never probes).
  std::function<std::shared_ptr<void const>()> cache_probe;

  /// Insert this member's converged result under its own cache key.  Called
  /// only for members that completed unfired with a non-null result.  May
  /// be empty (uncacheable query).
  std::function<void(std::shared_ptr<void const> const&)> publish;

  /// The shared lane-packed enactment (pins its graph snapshot by value).
  fused_fn fused;
};

/// Adapts a wave's member contexts to the `lane_mask(superstep)` shape
/// consumed by `multi_source_bfs` / `multi_source_sssp`: re-evaluates every
/// member's guards at each superstep, so a deadline or cancellation fires
/// *during* the batch masks that lane out of the traversal without
/// aborting anyone else.  `should_stop()` also records which guard fired,
/// which is exactly what the scheduler's post-enactment classification
/// reads — masking and classification can never disagree.
class live_lane_mask {
 public:
  explicit live_lane_mask(std::vector<job_context*> ctxs)
      : ctxs_(std::move(ctxs)) {}

  std::uint64_t operator()(std::size_t /*superstep*/) const {
    std::uint64_t mask = 0;
    for (std::size_t i = 0; i < ctxs_.size(); ++i)
      if (ctxs_[i] == nullptr || !ctxs_[i]->should_stop())
        mask |= std::uint64_t{1} << i;
    return mask;
  }

 private:
  std::vector<job_context*> ctxs_;
};

}  // namespace essentials::engine
