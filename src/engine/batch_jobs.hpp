#pragma once

/// \file engine/batch_jobs.hpp
/// \brief Canonical batchable job bundles (cold body + fusion hints) for
/// the engine's `submit_batch` path: BFS, SSSP and per-source closeness,
/// all enacted through the lane-packed multi-source traversals of
/// algorithms/msbfs.hpp.
///
/// The bit-identity contract, and how these builders keep it: a batchable
/// job's *cold* body (what runs when no compatible partner is queued) is a
/// **one-lane** `multi_source_bfs` / `multi_source_sssp` — the same code
/// path the fused body runs with N lanes.  Lane l of a fused wave and a
/// solo run of the same query therefore execute the identical
/// level-synchronous (BFS) or min-lattice (SSSP) fixed-point computation,
/// so per-member results are bit-identical whether the query fused with 63
/// others or ran alone — differentially verified in tests/test_batch.cpp.
/// (This is also why the payloads are dedicated `*_lanes_result` types
/// rather than `bfs_result`: the single-source `bfs` tracks parents, which
/// are race-dependent, and its `iterations` is batch-wide under fusion —
/// neither belongs in a result that must compare bit-for-bit.)
///
/// Per-member control inside a fused wave: the cold body threads
/// `ctx.should_stop()` as a 1-lane mask; the fused body wraps the wave's
/// contexts in `live_lane_mask`.  Either way a fired deadline/cancel masks
/// the lane out of the traversal at the next superstep and the body
/// returns null for it — the scheduler classifies from the fired record.
///
/// Opting out: pass `execution::batch::independent` and the builder leaves
/// `hints.fused` null; `submit_batch` then degrades to the plain unfused
/// submission path.
///
/// Usage:
///   auto j = engine.submit_batch(
///       desc, engine::bfs_batch_job<graph_csr>(execution::par, src));

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "algorithms/msbfs.hpp"
#include "core/execution.hpp"
#include "engine/batcher.hpp"
#include "engine/engine.hpp"

namespace essentials::engine {

// --- Result payloads -------------------------------------------------------

/// One BFS lane's converged view: hop counts from the member's source
/// (`-1` unreached) and the lane's own convergence depth — both
/// deterministic, identical fused or solo.
template <typename V>
struct bfs_lanes_result {
  std::vector<V> depths;
  V levels{0};  ///< last level at which this lane discovered any vertex
};

/// One SSSP lane's converged view: shortest distances from the member's
/// source (`infinity_v` unreachable) — the deterministic min-lattice fixed
/// point.  (No iteration count: under fusion that is batch-wide and
/// schedule-dependent, so it has no place in a bit-comparable payload.)
template <typename W>
struct sssp_lanes_result {
  std::vector<W> distances;
};

/// Harmonic closeness of one member's source vertex (sum of 1/d over
/// vertices it reaches) — the per-source scalar that closeness/diameter
/// style analytics batch naturally, one lane each.
struct closeness_lane_result {
  double closeness = 0.0;
};

namespace detail {

/// The cold bodies' 1-lane mask: lane 0 runs until this member's own
/// deadline/cancel guard fires — the same per-superstep re-evaluation
/// `live_lane_mask` performs for a fused wave.
struct solo_lane_mask {
  job_context const* ctx;
  std::uint64_t operator()(std::size_t /*superstep*/) const {
    return ctx->should_stop() ? 0 : ~std::uint64_t{0};
  }
};

/// Unpack a wave's payloads (member sources) and contexts.
template <typename V>
void unpack_lanes(std::vector<batch_lane> const& lanes,
                  std::vector<V>& sources, std::vector<job_context*>& ctxs) {
  sources.reserve(lanes.size());
  ctxs.reserve(lanes.size());
  for (auto const& lane : lanes) {
    sources.push_back(*std::static_pointer_cast<V const>(lane.payload));
    ctxs.push_back(lane.ctx);
  }
}

/// True when this lane's result must be withheld (guard fired: the
/// scheduler will retire the member deadline_expired / cancelled and a
/// truncated payload must never surface or cache).
inline bool lane_fired(job_context const* ctx) {
  return ctx != nullptr && ctx->fired() != job_context::kFiredNone;
}

}  // namespace detail

// --- BFS -------------------------------------------------------------------

template <typename GraphT, typename P>
batchable_job<GraphT> bfs_batch_job(
    P policy, typename GraphT::vertex_type source,
    execution::batch mode = execution::batch::fused) {
  using V = typename GraphT::vertex_type;
  batchable_job<GraphT> bj;
  bj.cold = [policy, source](GraphT const& g, job_context& ctx)
      -> std::shared_ptr<void const> {
    auto r = algorithms::multi_source_bfs(policy, g, std::vector<V>{source},
                                          detail::solo_lane_mask{&ctx});
    if (ctx.fired() != job_context::kFiredNone)
      return nullptr;
    auto out = std::make_shared<bfs_lanes_result<V>>();
    out->depths = std::move(r.depth[0]);
    out->levels = r.lane_levels[0];
    return out;
  };
  if (mode == execution::batch::independent)
    return bj;  // hints.fused stays null: always enacts alone
  bj.hints.payload = std::make_shared<V const>(source);
  bj.hints.max_lanes = 64;
  bj.hints.fused = [policy](GraphT const& g,
                            std::vector<batch_lane> const& lanes)
      -> fused_outcome {
    std::vector<V> sources;
    std::vector<job_context*> ctxs;
    detail::unpack_lanes<V>(lanes, sources, ctxs);
    auto r = algorithms::multi_source_bfs(policy, g, sources,
                                          live_lane_mask{std::move(ctxs)});
    fused_outcome out;
    out.edge_passes = 1;  // one traversal served every lane
    out.results.resize(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (detail::lane_fired(lanes[i].ctx))
        continue;
      auto res = std::make_shared<bfs_lanes_result<V>>();
      res->depths = std::move(r.depth[i]);
      res->levels = r.lane_levels[i];
      out.results[i] = std::move(res);
    }
    return out;
  };
  return bj;
}

// --- SSSP ------------------------------------------------------------------

template <typename GraphT, typename P>
batchable_job<GraphT> sssp_batch_job(
    P policy, typename GraphT::vertex_type source,
    execution::batch mode = execution::batch::fused) {
  using V = typename GraphT::vertex_type;
  using W = typename GraphT::weight_type;
  batchable_job<GraphT> bj;
  bj.cold = [policy, source](GraphT const& g, job_context& ctx)
      -> std::shared_ptr<void const> {
    auto r = algorithms::multi_source_sssp(policy, g, std::vector<V>{source},
                                           detail::solo_lane_mask{&ctx});
    if (ctx.fired() != job_context::kFiredNone)
      return nullptr;
    auto out = std::make_shared<sssp_lanes_result<W>>();
    out->distances = std::move(r.dist[0]);
    return out;
  };
  if (mode == execution::batch::independent)
    return bj;
  bj.hints.payload = std::make_shared<V const>(source);
  bj.hints.max_lanes = 64;
  bj.hints.fused = [policy](GraphT const& g,
                            std::vector<batch_lane> const& lanes)
      -> fused_outcome {
    std::vector<V> sources;
    std::vector<job_context*> ctxs;
    detail::unpack_lanes<V>(lanes, sources, ctxs);
    auto r = algorithms::multi_source_sssp(policy, g, sources,
                                           live_lane_mask{std::move(ctxs)});
    fused_outcome out;
    out.edge_passes = 1;
    out.results.resize(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (detail::lane_fired(lanes[i].ctx))
        continue;
      auto res = std::make_shared<sssp_lanes_result<W>>();
      res->distances = std::move(r.dist[i]);
      out.results[i] = std::move(res);
    }
    return out;
  };
  return bj;
}

// --- Per-source harmonic closeness -----------------------------------------

namespace detail {

template <typename V>
double harmonic_from_depths(std::vector<V> const& depths) {
  double acc = 0.0;
  for (auto const d : depths)
    if (d > 0)
      acc += 1.0 / static_cast<double>(d);
  return acc;
}

}  // namespace detail

/// Closeness of *one* source vertex — the shape closeness/diameter-style
/// analytics submit per vertex, and exactly what the 64 lanes amortize:
/// a burst of per-source closeness queries costs one edge pass per wave.
template <typename GraphT, typename P>
batchable_job<GraphT> closeness_batch_job(
    P policy, typename GraphT::vertex_type source,
    execution::batch mode = execution::batch::fused) {
  using V = typename GraphT::vertex_type;
  batchable_job<GraphT> bj;
  bj.cold = [policy, source](GraphT const& g, job_context& ctx)
      -> std::shared_ptr<void const> {
    auto r = algorithms::multi_source_bfs(policy, g, std::vector<V>{source},
                                          detail::solo_lane_mask{&ctx});
    if (ctx.fired() != job_context::kFiredNone)
      return nullptr;
    auto out = std::make_shared<closeness_lane_result>();
    out->closeness = detail::harmonic_from_depths(r.depth[0]);
    return out;
  };
  if (mode == execution::batch::independent)
    return bj;
  bj.hints.payload = std::make_shared<V const>(source);
  bj.hints.max_lanes = 64;
  bj.hints.fused = [policy](GraphT const& g,
                            std::vector<batch_lane> const& lanes)
      -> fused_outcome {
    std::vector<V> sources;
    std::vector<job_context*> ctxs;
    detail::unpack_lanes<V>(lanes, sources, ctxs);
    auto r = algorithms::multi_source_bfs(policy, g, sources,
                                          live_lane_mask{std::move(ctxs)});
    fused_outcome out;
    out.edge_passes = 1;
    out.results.resize(lanes.size());
    for (std::size_t i = 0; i < lanes.size(); ++i) {
      if (detail::lane_fired(lanes[i].ctx))
        continue;
      auto res = std::make_shared<closeness_lane_result>();
      res->closeness = detail::harmonic_from_depths(r.depth[i]);
      out.results[i] = std::move(res);
    }
    return out;
  };
  return bj;
}

}  // namespace essentials::engine
