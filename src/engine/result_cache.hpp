#pragma once

/// \file engine/result_cache.hpp
/// \brief Memoization layer for analytics queries: an LRU cache keyed by
/// (graph name, epoch, algorithm id, canonicalized params).
///
/// The serving observation behind it: analytics traffic is heavily skewed —
/// SSSP from a hot source, PPR from the same seed set, BFS from a landing
/// page — so identical (graph, epoch, algo, params) queries recur within an
/// epoch.  Because every enactment in this framework is deterministic for a
/// fixed graph snapshot (see docs/ARCHITECTURE.md, "Determinism policy"),
/// a cached result is *bit-identical* to a re-enactment, and serving it is
/// pure win.
///
/// Epoch correctness: the epoch is part of the key, so a query against a
/// newly published epoch can never match a stale entry even if invalidation
/// raced with the lookup.
///
/// Warm-startable demotion (PR 4): `invalidate_graph(name)` no longer
/// blanket-evicts.  For each distinct query identity (graph, algorithm,
/// params) it *demotes* the newest-epoch entry to "warm": still exactly
/// addressable under its old-epoch key (in-flight jobs pinned to the old
/// snapshot keep hitting it), and additionally discoverable through
/// `lookup_warm()` by a newer-epoch query that wants to seed an incremental
/// enactment from the stale converged result (algorithms/incremental.hpp).
/// Older duplicates of the same identity are evicted as before.  At most
/// one warm entry exists per identity; a fresh insert at a newer epoch
/// supersedes (evicts) the warm entry it was presumably seeded from.
///
/// Values are type-erased (`shared_ptr<void const>`): the engine serves
/// heterogeneous result types (bfs_result, sssp_result, ppr_result...) out
/// of one cache; the typed accessor lives on the job handle
/// (`job::result_as<R>()`), where the caller knows which algorithm it
/// asked for.  shared_ptr ownership means an entry can be evicted while a
/// client still holds the result — eviction frees the *slot*, never the
/// data under a reader.
///
/// Concurrency: one mutex around map + LRU list.  Lookups and inserts are
/// O(1) map operations plus a list splice; the critical section never runs
/// user code and never allocates proportionally to the value.

#include <cstddef>
#include <cstdint>
#include <iterator>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/stats.hpp"

namespace essentials::engine {

/// Cache key: the full identity of a deterministic analytics query.
struct cache_key {
  std::string graph;      ///< registry name
  std::uint64_t epoch = 0;  ///< registry epoch the query ran against
  std::string algorithm;  ///< algorithm id ("sssp", "bfs", ...)
  std::string params;     ///< canonicalized parameters ("src=42")

  bool operator==(cache_key const&) const = default;
};

/// The epoch-independent part of a cache key: what `lookup_warm` matches
/// on.  Two keys with equal identity describe the same query against
/// different snapshots of the same graph.
struct cache_identity {
  std::string graph;
  std::string algorithm;
  std::string params;

  bool operator==(cache_identity const&) const = default;
};

inline cache_identity identity_of(cache_key const& k) {
  return {k.graph, k.algorithm, k.params};
}

struct cache_identity_hash {
  std::size_t operator()(cache_identity const& k) const noexcept {
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](char const* data, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
      }
    };
    mix(k.graph.data(), k.graph.size());
    mix("\x1f", 1);
    mix(k.algorithm.data(), k.algorithm.size());
    mix("\x1f", 1);
    mix(k.params.data(), k.params.size());
    return static_cast<std::size_t>(h);
  }
};

struct cache_key_hash {
  std::size_t operator()(cache_key const& k) const noexcept {
    // FNV-1a over the textual identity; epoch mixed in as bytes.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](char const* data, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
      }
    };
    mix(k.graph.data(), k.graph.size());
    mix("\x1f", 1);
    mix(reinterpret_cast<char const*>(&k.epoch), sizeof(k.epoch));
    mix(k.algorithm.data(), k.algorithm.size());
    mix("\x1f", 1);
    mix(k.params.data(), k.params.size());
    return static_cast<std::size_t>(h);
  }
};

/// What `invalidate_graph` did on an epoch publish.
struct invalidation_counts {
  std::size_t evicted = 0;  ///< entries dropped outright
  std::size_t demoted = 0;  ///< entries kept as warm-start seeds
  std::size_t total() const { return evicted + demoted; }
};

/// A warm probe result: the stale converged value plus the epoch it was
/// computed against (the warm-start source epoch for `delta_since`).
struct warm_hit {
  std::shared_ptr<void const> value;
  std::uint64_t epoch = 0;
  explicit operator bool() const { return static_cast<bool>(value); }
};

class result_cache {
 public:
  /// `capacity` bounds the number of entries (LRU eviction past it);
  /// `stats`, when provided, receives hit/miss/eviction/invalidation
  /// counts.  capacity == 0 disables caching (every probe misses).
  explicit result_cache(std::size_t capacity, engine_stats* stats = nullptr)
      : capacity_(capacity), stats_(stats) {}

  result_cache(result_cache const&) = delete;
  result_cache& operator=(result_cache const&) = delete;

  /// O(1) probe; promotes the entry to most-recently-used on hit.
  std::shared_ptr<void const> lookup(cache_key const& key) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = map_.find(key);
    if (it == map_.end()) {
      if (stats_)
        stats_->on_cache_miss();
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    if (stats_)
      stats_->on_cache_hit();
    return it->second->value;
  }

  /// Insert (or refresh) an entry; evicts the least-recently-used entry
  /// when past capacity.  Null values are not cached.  A fresh insert
  /// supersedes (evicts) any warm entry of the same identity at an older
  /// epoch — the warm seed has served its purpose.
  void insert(cache_key key, std::shared_ptr<void const> value) {
    if (!value || capacity_ == 0)
      return;
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    auto const wit = warm_.find(identity_of(key));
    if (wit != warm_.end() && wit->second->key.epoch < key.epoch)
      erase_entry(wit->second);
    lru_.push_front(entry{key, std::move(value), /*warm=*/false});
    map_.emplace(std::move(key), lru_.begin());
    while (map_.size() > capacity_)
      evict_lru();
  }

  /// Probe for a warm-start seed: the demoted (stale-epoch) entry of the
  /// same identity as `key` but an *older* epoch.  The caller pairs the
  /// returned epoch with `delta_since`/`delta_between` to decide whether an
  /// incremental enactment is possible.  Does not touch hit/miss counters —
  /// a warm probe is an optimization attempt, not a serve.
  warm_hit lookup_warm(cache_key const& key) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const wit = warm_.find(identity_of(key));
    if (wit == warm_.end())
      return {};
    auto const lit = wit->second;
    if (lit->key.epoch >= key.epoch)
      return {};  // not actually older — nothing to warm from
    lru_.splice(lru_.begin(), lru_, lit);  // keep the seed hot in the LRU
    return {lit->value, lit->key.epoch};
  }

  /// Epoch-publish hook: for each query identity of `graph`, *demote* the
  /// newest-epoch entry to a warm-start seed and evict the rest.  Demoted
  /// entries stay exactly addressable under their old-epoch key (in-flight
  /// jobs pinned to the old snapshot still hit) and become discoverable via
  /// `lookup_warm`.  Entries of other graphs survive untouched.
  invalidation_counts invalidate_graph(std::string const& graph) {
    std::lock_guard<std::mutex> guard(mutex_);
    invalidation_counts counts;
    // Pass 1: pick the newest-epoch survivor per identity.
    std::unordered_map<cache_identity, std::list<entry>::iterator,
                       cache_identity_hash>
        newest;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      if (it->key.graph != graph)
        continue;
      auto const [nit, inserted] = newest.try_emplace(identity_of(it->key), it);
      if (!inserted && it->key.epoch > nit->second->key.epoch)
        nit->second = it;
    }
    // Pass 2: demote survivors, evict the rest.
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.graph != graph) {
        ++it;
        continue;
      }
      auto const nit = newest.find(identity_of(it->key));
      if (nit != newest.end() && nit->second == it) {
        if (!it->warm)
          ++counts.demoted;  // re-demoting an already-warm entry is a no-op
        it->warm = true;
        warm_[nit->first] = it;
        ++it;
      } else {
        ++counts.evicted;
        it = erase_entry(it);
      }
    }
    if (stats_) {
      if (counts.total())
        stats_->on_cache_invalidation(counts.total());
      if (counts.demoted)
        stats_->on_cache_demotion(counts.demoted);
    }
    return counts;
  }

  /// Drop everything (warm seeds included).
  void clear() {
    std::lock_guard<std::mutex> guard(mutex_);
    map_.clear();
    warm_.clear();
    lru_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return map_.size();
  }

  std::size_t capacity() const { return capacity_; }

  /// Number of warm (demoted) entries currently held.
  std::size_t warm_size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return warm_.size();
  }

 private:
  struct entry {
    cache_key key;
    std::shared_ptr<void const> value;
    bool warm = false;  ///< demoted: serves lookup_warm, not fresh lookups
  };

  /// Erase one entry from all three structures; returns the next iterator.
  std::list<entry>::iterator erase_entry(std::list<entry>::iterator it) {
    if (it->warm) {
      auto const wit = warm_.find(identity_of(it->key));
      if (wit != warm_.end() && wit->second == it)
        warm_.erase(wit);
    }
    map_.erase(it->key);
    return lru_.erase(it);
  }

  void evict_lru() {
    auto it = std::prev(lru_.end());
    erase_entry(it);
    if (stats_)
      stats_->on_cache_eviction();
  }

  std::size_t capacity_;
  engine_stats* stats_;
  mutable std::mutex mutex_;
  std::list<entry> lru_;  // front == most recently used
  std::unordered_map<cache_key, std::list<entry>::iterator, cache_key_hash>
      map_;
  /// identity → the (single) warm entry for that identity.
  std::unordered_map<cache_identity, std::list<entry>::iterator,
                     cache_identity_hash>
      warm_;
};

}  // namespace essentials::engine
