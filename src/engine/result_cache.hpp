#pragma once

/// \file engine/result_cache.hpp
/// \brief Memoization layer for analytics queries: an LRU cache keyed by
/// (graph name, epoch, algorithm id, canonicalized params).
///
/// The serving observation behind it: analytics traffic is heavily skewed —
/// SSSP from a hot source, PPR from the same seed set, BFS from a landing
/// page — so identical (graph, epoch, algo, params) queries recur within an
/// epoch.  Because every enactment in this framework is deterministic for a
/// fixed graph snapshot (see docs/ARCHITECTURE.md, "Determinism policy"),
/// a cached result is *bit-identical* to a re-enactment, and serving it is
/// pure win.
///
/// Epoch correctness: the epoch is part of the key, so a query against a
/// newly published epoch can never match a stale entry even if invalidation
/// raced with the lookup.  `invalidate_graph(name)` additionally evicts all
/// entries of a graph eagerly on publish (no point keeping results nobody
/// can key to anymore) — that is the hook the registry publish path calls.
///
/// Values are type-erased (`shared_ptr<void const>`): the engine serves
/// heterogeneous result types (bfs_result, sssp_result, ppr_result...) out
/// of one cache; the typed accessor lives on the job handle
/// (`job::result_as<R>()`), where the caller knows which algorithm it
/// asked for.  shared_ptr ownership means an entry can be evicted while a
/// client still holds the result — eviction frees the *slot*, never the
/// data under a reader.
///
/// Concurrency: one mutex around map + LRU list.  Lookups and inserts are
/// O(1) map operations plus a list splice; the critical section never runs
/// user code and never allocates proportionally to the value.

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "engine/stats.hpp"

namespace essentials::engine {

/// Cache key: the full identity of a deterministic analytics query.
struct cache_key {
  std::string graph;      ///< registry name
  std::uint64_t epoch = 0;  ///< registry epoch the query ran against
  std::string algorithm;  ///< algorithm id ("sssp", "bfs", ...)
  std::string params;     ///< canonicalized parameters ("src=42")

  bool operator==(cache_key const&) const = default;
};

struct cache_key_hash {
  std::size_t operator()(cache_key const& k) const noexcept {
    // FNV-1a over the textual identity; epoch mixed in as bytes.
    std::uint64_t h = 1469598103934665603ull;
    auto mix = [&h](char const* data, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<unsigned char>(data[i]);
        h *= 1099511628211ull;
      }
    };
    mix(k.graph.data(), k.graph.size());
    mix("\x1f", 1);
    mix(reinterpret_cast<char const*>(&k.epoch), sizeof(k.epoch));
    mix(k.algorithm.data(), k.algorithm.size());
    mix("\x1f", 1);
    mix(k.params.data(), k.params.size());
    return static_cast<std::size_t>(h);
  }
};

class result_cache {
 public:
  /// `capacity` bounds the number of entries (LRU eviction past it);
  /// `stats`, when provided, receives hit/miss/eviction/invalidation
  /// counts.  capacity == 0 disables caching (every probe misses).
  explicit result_cache(std::size_t capacity, engine_stats* stats = nullptr)
      : capacity_(capacity), stats_(stats) {}

  result_cache(result_cache const&) = delete;
  result_cache& operator=(result_cache const&) = delete;

  /// O(1) probe; promotes the entry to most-recently-used on hit.
  std::shared_ptr<void const> lookup(cache_key const& key) {
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = map_.find(key);
    if (it == map_.end()) {
      if (stats_)
        stats_->on_cache_miss();
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);  // move to front
    if (stats_)
      stats_->on_cache_hit();
    return it->second->value;
  }

  /// Insert (or refresh) an entry; evicts the least-recently-used entry
  /// when past capacity.  Null values are not cached.
  void insert(cache_key key, std::shared_ptr<void const> value) {
    if (!value || capacity_ == 0)
      return;
    std::lock_guard<std::mutex> guard(mutex_);
    auto const it = map_.find(key);
    if (it != map_.end()) {
      it->second->value = std::move(value);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(entry{key, std::move(value)});
    map_.emplace(std::move(key), lru_.begin());
    while (map_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
      if (stats_)
        stats_->on_cache_eviction();
    }
  }

  /// Drop every entry belonging to `graph` (all epochs) — called when a new
  /// epoch of that graph is published.  Entries of other graphs survive.
  /// Returns the number of entries dropped.
  std::size_t invalidate_graph(std::string const& graph) {
    std::lock_guard<std::mutex> guard(mutex_);
    std::size_t dropped = 0;
    for (auto it = lru_.begin(); it != lru_.end();) {
      if (it->key.graph == graph) {
        map_.erase(it->key);
        it = lru_.erase(it);
        ++dropped;
      } else {
        ++it;
      }
    }
    if (stats_ && dropped)
      stats_->on_cache_invalidation(dropped);
    return dropped;
  }

  /// Drop everything.
  void clear() {
    std::lock_guard<std::mutex> guard(mutex_);
    map_.clear();
    lru_.clear();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> guard(mutex_);
    return map_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  struct entry {
    cache_key key;
    std::shared_ptr<void const> value;
  };

  std::size_t capacity_;
  engine_stats* stats_;
  mutable std::mutex mutex_;
  std::list<entry> lru_;  // front == most recently used
  std::unordered_map<cache_key, std::list<entry>::iterator, cache_key_hash>
      map_;
};

}  // namespace essentials::engine
