#pragma once

/// \file engine/warm_jobs.hpp
/// \brief Canonical (cold, warm) job-body pairs for the warm-start-capable
/// engine submission path (`analytics_engine::submit(desc, cold, warm)`).
///
/// The cold body is exactly what a plain submission would run; the warm
/// body wraps the matching incremental enactor
/// (algorithms/incremental.hpp): it un-erases the stale cached result,
/// seeds the enactment from the delta, and reports the outcome through the
/// job context (`note_warm_start` / `note_delta_fallback`) so engine_stats
/// and telemetry schema v4 attribute the run correctly.  The incremental
/// enactors transparently fall back to the cold algorithm when the delta
/// is not warmable (deletions / weight increases / truncated logs), so the
/// warm body never produces a different payload than the cold one —
/// differentially verified in tests/test_delta.cpp.
///
/// Usage:
///   auto j = engine.submit(desc,
///                          engine::sssp_cold_job<graph_csr>(policy, src),
///                          engine::sssp_warm_job<graph_csr>(policy, src));

#include <memory>
#include <utility>

#include "algorithms/bfs.hpp"
#include "algorithms/connected_components.hpp"
#include "algorithms/incremental.hpp"
#include "algorithms/sssp.hpp"
#include "engine/engine.hpp"

namespace essentials::engine {

namespace detail {

/// Shared outcome-reporting shim: warm enactments that internally fell
/// back to the cold algorithm count as delta fallbacks, not warm hits.
inline void report_outcome(job_context& ctx,
                           algorithms::incremental_outcome const& out) {
  if (out.warm_started)
    ctx.note_warm_start(out.delta_edges, out.supersteps_saved);
  else
    ctx.note_delta_fallback();
}

}  // namespace detail

// --- SSSP ------------------------------------------------------------------

template <typename GraphT, typename P>
typename analytics_engine<GraphT>::typed_job_fn sssp_cold_job(
    P policy, typename GraphT::vertex_type source) {
  using W = typename GraphT::weight_type;
  return [policy, source](GraphT const& g, job_context& ctx)
             -> std::shared_ptr<void const> {
    auto r = algorithms::sssp(policy, g, source);
    if (ctx.should_stop())
      return nullptr;
    return std::make_shared<algorithms::sssp_result<W> const>(std::move(r));
  };
}

template <typename GraphT, typename P>
typename analytics_engine<GraphT>::warm_job_fn sssp_warm_job(
    P policy, typename GraphT::vertex_type source) {
  using W = typename GraphT::weight_type;
  using delta_t = typename analytics_engine<GraphT>::delta_type;
  return [policy, source](GraphT const& g,
                          std::shared_ptr<void const> const& prev_erased,
                          delta_t const& delta, job_context& ctx)
             -> std::shared_ptr<void const> {
    auto const* prev =
        static_cast<algorithms::sssp_result<W> const*>(prev_erased.get());
    algorithms::incremental_outcome out;
    auto r = algorithms::sssp_incremental(policy, g, source, *prev, delta,
                                          &out);
    if (ctx.should_stop())
      return nullptr;
    detail::report_outcome(ctx, out);
    return std::make_shared<algorithms::sssp_result<W> const>(std::move(r));
  };
}

// --- BFS -------------------------------------------------------------------

template <typename GraphT, typename P>
typename analytics_engine<GraphT>::typed_job_fn bfs_cold_job(
    P policy, typename GraphT::vertex_type source) {
  using V = typename GraphT::vertex_type;
  return [policy, source](GraphT const& g, job_context& ctx)
             -> std::shared_ptr<void const> {
    auto r = algorithms::bfs(policy, g, source);
    if (ctx.should_stop())
      return nullptr;
    return std::make_shared<algorithms::bfs_result<V> const>(std::move(r));
  };
}

template <typename GraphT, typename P>
typename analytics_engine<GraphT>::warm_job_fn bfs_warm_job(
    P policy, typename GraphT::vertex_type source) {
  using V = typename GraphT::vertex_type;
  using delta_t = typename analytics_engine<GraphT>::delta_type;
  return [policy, source](GraphT const& g,
                          std::shared_ptr<void const> const& prev_erased,
                          delta_t const& delta, job_context& ctx)
             -> std::shared_ptr<void const> {
    auto const* prev =
        static_cast<algorithms::bfs_result<V> const*>(prev_erased.get());
    algorithms::incremental_outcome out;
    auto r =
        algorithms::bfs_incremental(policy, g, source, *prev, delta, &out);
    if (ctx.should_stop())
      return nullptr;
    detail::report_outcome(ctx, out);
    return std::make_shared<algorithms::bfs_result<V> const>(std::move(r));
  };
}

// --- Connected components --------------------------------------------------

template <typename GraphT, typename P>
typename analytics_engine<GraphT>::typed_job_fn cc_cold_job(P policy) {
  using V = typename GraphT::vertex_type;
  return [policy](GraphT const& g, job_context& ctx)
             -> std::shared_ptr<void const> {
    auto r = algorithms::connected_components(policy, g);
    if (ctx.should_stop())
      return nullptr;
    return std::make_shared<algorithms::cc_result<V> const>(std::move(r));
  };
}

template <typename GraphT, typename P>
typename analytics_engine<GraphT>::warm_job_fn cc_warm_job(P policy) {
  using V = typename GraphT::vertex_type;
  using delta_t = typename analytics_engine<GraphT>::delta_type;
  return [policy](GraphT const& g,
                  std::shared_ptr<void const> const& prev_erased,
                  delta_t const& delta, job_context& ctx)
             -> std::shared_ptr<void const> {
    auto const* prev =
        static_cast<algorithms::cc_result<V> const*>(prev_erased.get());
    algorithms::incremental_outcome out;
    auto r = algorithms::connected_components_incremental(policy, g, *prev,
                                                          delta, &out);
    if (ctx.should_stop())
      return nullptr;
    detail::report_outcome(ctx, out);
    return std::make_shared<algorithms::cc_result<V> const>(std::move(r));
  };
}

}  // namespace essentials::engine
